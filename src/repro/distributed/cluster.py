"""The simulated cluster every engine runs against.

Mirrors the paper's setup (Sec. VII-A): a number of workers (they use 28,
4 per slave x 7 slaves), a per-worker memory budget, and calibrated
communication/computation rates.  The cluster itself is a small value
object — data movement happens in :mod:`repro.distributed.hcube` and
:mod:`repro.distributed.shuffle`; the cluster supplies the parameters and
fresh cost ledgers.

The ``runtime`` field is a *hint* naming the execution backend
(:mod:`repro.runtime`) that should carry local per-cube computation:
``serial`` keeps everything in-process (the historical simulated
behaviour), ``threads``/``processes`` run worker tasks on a real pool,
and ``remote`` drives :mod:`repro.net` worker agents on other machines.
The hint is resolved into an :class:`repro.runtime.Executor` by
:func:`repro.runtime.executor_for`.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from ..errors import ConfigError
from .metrics import CostLedger, CostModelParams

__all__ = ["Cluster", "default_workers", "RUNTIME_BACKENDS"]

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

_DEFAULT_WORKERS = 8

#: Execution backends understood by :mod:`repro.runtime` (``remote``
#: resolves to :class:`repro.net.executor.RemoteExecutor` lazily).
RUNTIME_BACKENDS = ("serial", "threads", "processes", "remote")


def default_workers() -> int:
    """Worker count, overridable through REPRO_WORKERS."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None:
        return _DEFAULT_WORKERS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{WORKERS_ENV_VAR} must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{WORKERS_ENV_VAR} must be >= 1, got {raw!r}")
    return value


@dataclass(frozen=True)
class Cluster:
    """A simulated cluster configuration."""

    num_workers: int = field(default_factory=default_workers)
    params: CostModelParams = field(default_factory=CostModelParams)
    #: Per-worker memory budget in tuples; None disables OOM checking.
    memory_tuples_per_worker: float | None = None
    #: Execution backend hint: one of :data:`RUNTIME_BACKENDS`.
    runtime: str = "serial"

    def __post_init__(self):
        if self.num_workers < 1:
            raise ConfigError("a cluster needs at least one worker")
        if self.runtime not in RUNTIME_BACKENDS:
            raise ConfigError(
                f"unknown runtime {self.runtime!r}; "
                f"choose from {RUNTIME_BACKENDS}")

    def new_ledger(self) -> CostLedger:
        return CostLedger(params=self.params)

    def with_workers(self, num_workers: int) -> "Cluster":
        """Same configuration, different worker count (Fig. 11 sweeps)."""
        return dataclasses.replace(self, num_workers=num_workers)

    def with_runtime(self, runtime: str) -> "Cluster":
        """Same configuration, different execution backend."""
        return dataclasses.replace(self, runtime=runtime)
