"""The simulated cluster every engine runs against.

Mirrors the paper's setup (Sec. VII-A): a number of workers (they use 28,
4 per slave x 7 slaves), a per-worker memory budget, and calibrated
communication/computation rates.  The cluster itself is a small value
object — data movement happens in :mod:`repro.distributed.hcube` and
:mod:`repro.distributed.shuffle`; the cluster supplies the parameters and
fresh cost ledgers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .metrics import CostLedger, CostModelParams

__all__ = ["Cluster", "default_workers"]

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """Worker count, overridable through REPRO_WORKERS."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None:
        return _DEFAULT_WORKERS
    value = int(raw)
    if value < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {raw!r}")
    return value


@dataclass(frozen=True)
class Cluster:
    """A simulated cluster configuration."""

    num_workers: int = field(default_factory=default_workers)
    params: CostModelParams = field(default_factory=CostModelParams)
    #: Per-worker memory budget in tuples; None disables OOM checking.
    memory_tuples_per_worker: float | None = None

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")

    def new_ledger(self) -> CostLedger:
        return CostLedger(params=self.params)

    def with_workers(self, num_workers: int) -> "Cluster":
        """Same configuration, different worker count (Fig. 11 sweeps)."""
        return Cluster(num_workers=num_workers, params=self.params,
                       memory_tuples_per_worker=self.memory_tuples_per_worker)
