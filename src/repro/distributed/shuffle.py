"""Plain hash-partition shuffles for the multi-round baselines.

SparkSQL-style binary joins and BigJoin repartition data *between*
rounds: every tuple is routed to exactly one worker by hashing its join
key.  This module provides that primitive plus its accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.relation import Relation
from ..errors import SchemaError
from .hcube import HashFn, mix_hash
from .metrics import ShuffleStats

__all__ = ["hash_partition", "broadcast_stats"]


def hash_partition(relation: Relation, key_attrs: Sequence[str],
                   num_workers: int, hash_fn: HashFn = mix_hash,
                   salt: int = 0) -> tuple[list[Relation], ShuffleStats]:
    """Split ``relation`` across workers by hash of ``key_attrs``.

    Every tuple travels once, so ``tuple_copies == len(relation)``.
    """
    key_attrs = tuple(key_attrs)
    if not key_attrs:
        raise SchemaError("hash_partition needs at least one key attribute")
    ids = np.zeros(len(relation), dtype=np.int64)
    for i, attr in enumerate(key_attrs):
        ids = ids * np.int64(num_workers) + hash_fn(
            relation.column(attr), num_workers, salt + i)
    ids %= num_workers
    parts = []
    for w in range(num_workers):
        parts.append(Relation(relation.name, relation.attributes,
                              relation.data[ids == w], dedup=False))
    loads = [len(p) for p in parts]
    stats = ShuffleStats(
        tuple_copies=len(relation),
        blocks_fetched=num_workers,
        bytes_copied=relation.nbytes,
        max_worker_tuples=max(loads, default=0),
    )
    return parts, stats


def broadcast_stats(relation: Relation, num_workers: int) -> ShuffleStats:
    """Accounting for replicating a relation to every worker."""
    return ShuffleStats(
        tuple_copies=len(relation) * num_workers,
        blocks_fetched=num_workers,
        bytes_copied=relation.nbytes * num_workers,
        max_worker_tuples=len(relation),
    )
