"""Plain hash-partition shuffles for the multi-round baselines.

SparkSQL-style binary joins and BigJoin repartition data *between*
rounds: every tuple is routed to exactly one worker by hashing its join
key.  This module provides that primitive plus its accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.relation import Relation
from ..errors import SchemaError
from .hcube import HashFn, mix_hash
from .metrics import ShuffleStats

__all__ = ["hash_partition", "hash_partition_rows", "broadcast_stats"]


def hash_partition_rows(relation: Relation, key_attrs: Sequence[str],
                        num_workers: int, hash_fn: HashFn = mix_hash,
                        salt: int = 0
                        ) -> tuple[list[np.ndarray], ShuffleStats]:
    """Routing-only hash partition: per-worker row indices, no copies.

    The data plane decides how the assignment becomes physical movement
    (:mod:`repro.runtime.transport`); the stats describe the modeled
    movement either way.  Every tuple is routed exactly once, so
    ``tuple_copies == len(relation)``.
    """
    key_attrs = tuple(key_attrs)
    if not key_attrs:
        raise SchemaError("hash_partition needs at least one key attribute")
    ids = np.zeros(len(relation), dtype=np.int64)
    for i, attr in enumerate(key_attrs):
        ids = ids * np.int64(num_workers) + hash_fn(
            relation.column(attr), num_workers, salt + i)
    ids %= num_workers
    rows = [np.flatnonzero(ids == w) for w in range(num_workers)]
    stats = ShuffleStats(
        tuple_copies=len(relation),
        blocks_fetched=num_workers,
        bytes_copied=relation.nbytes,
        max_worker_tuples=max((int(r.shape[0]) for r in rows), default=0),
    )
    return rows, stats


def hash_partition(relation: Relation, key_attrs: Sequence[str],
                   num_workers: int, hash_fn: HashFn = mix_hash,
                   salt: int = 0) -> tuple[list[Relation], ShuffleStats]:
    """Split ``relation`` across workers by hash of ``key_attrs``.

    Materializing wrapper over :func:`hash_partition_rows`.
    """
    rows, stats = hash_partition_rows(relation, key_attrs, num_workers,
                                      hash_fn=hash_fn, salt=salt)
    parts = [Relation(relation.name, relation.attributes,
                      relation.data[r], dedup=False) for r in rows]
    return parts, stats


def broadcast_stats(relation: Relation, num_workers: int) -> ShuffleStats:
    """Accounting for replicating a relation to every worker."""
    return ShuffleStats(
        tuple_copies=len(relation) * num_workers,
        blocks_fetched=num_workers,
        bytes_copied=relation.nbytes * num_workers,
        max_worker_tuples=len(relation),
    )
