"""Cost accounting: counters, model parameters, and cost breakdowns.

The paper's evaluation reports *seconds* per phase (Tables II-IV:
Optimization / Pre-Computing / Communication / Computation / Total), all
derived from counted quantities through two calibrated rates (Sec. III-B):

- ``alpha`` — tuples transmitted per second, measured by shuffling k
  random tuples;
- ``beta`` — partial bindings extended per second, measured by timing
  trie queries / reusing sampling statistics.

Our cluster is simulated, so we keep the same structure: every shuffle
and every Leapfrog run updates deterministic counters, and
:class:`CostModelParams` converts them into model-seconds.  Parameters
are pinned by default (reproducible numbers); :mod:`repro.core.calibration`
can measure real rates of the running process instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["CostModelParams", "ShuffleStats", "CostBreakdown", "CostLedger"]


@dataclass(frozen=True)
class CostModelParams:
    """Rates converting counted work into model-seconds.

    The defaults encode the *relative* magnitudes the paper reports:
    tuple-at-a-time shuffling (Push) is about two orders of magnitude
    slower per tuple than block pulls (Fig. 9a); Merge ships pre-built
    tries that serialize better than tuple blocks and skips local trie
    construction (Fig. 9b).
    """

    #: Tuples per second for tuple-at-a-time (Push) shuffling.
    alpha_push: float = 5.0e4
    #: Tuples per second for block-based (Pull) shuffling.
    alpha_pull: float = 5.0e6
    #: Tuples per second for pre-built-trie (Merge) shuffling.
    alpha_merge: float = 1.0e7
    #: Fixed cost per fetched block (request latency), seconds.
    block_latency: float = 1.0e-3
    #: Leapfrog intersection work units per second, per worker.
    beta_work: float = 2.0e6
    #: Tuples per second when building a trie on a worker (Push/Pull).
    trie_build_rate: float = 1.0e6
    #: Tuples per second when merging pre-built block tries (Merge).
    trie_merge_rate: float = 1.0e7
    #: Trie lookups per second on a *pre-computed* bag relation (the
    #: optimizer's beta_i for pre-computed nodes).
    beta_trie_lookup: float = 1.0e6

    def alpha_for(self, impl: str) -> float:
        try:
            return {"push": self.alpha_push,
                    "pull": self.alpha_pull,
                    "merge": self.alpha_merge}[impl]
        except KeyError:
            raise ConfigError(
                f"unknown HCube implementation {impl!r}; "
                "expected push/pull/merge") from None


@dataclass
class ShuffleStats:
    """What one shuffle moved."""

    tuple_copies: int = 0        # (tuple, destination) pairs
    blocks_fetched: int = 0
    bytes_copied: int = 0
    max_worker_tuples: int = 0   # heaviest destination (memory / skew)

    def merge_in(self, other: "ShuffleStats") -> None:
        self.tuple_copies += other.tuple_copies
        self.blocks_fetched += other.blocks_fetched
        self.bytes_copied += other.bytes_copied
        self.max_worker_tuples = max(self.max_worker_tuples,
                                     other.max_worker_tuples)


@dataclass
class CostBreakdown:
    """Model-seconds per phase — one row of the paper's Tables II-IV."""

    optimization: float = 0.0
    precompute: float = 0.0
    communication: float = 0.0
    computation: float = 0.0

    @property
    def total(self) -> float:
        return (self.optimization + self.precompute
                + self.communication + self.computation)

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            optimization=self.optimization + other.optimization,
            precompute=self.precompute + other.precompute,
            communication=self.communication + other.communication,
            computation=self.computation + other.computation,
        )

    def as_row(self) -> dict[str, float]:
        return {
            "Optimization": self.optimization,
            "Pre-Computing": self.precompute,
            "Communication": self.communication,
            "Computation": self.computation,
            "Total": self.total,
        }


@dataclass
class CostLedger:
    """Mutable counters accumulated over one engine run."""

    params: CostModelParams = field(default_factory=CostModelParams)
    tuples_shuffled: int = 0
    blocks_fetched: int = 0
    rounds: int = 0
    worker_work: dict[int, float] = field(default_factory=dict)
    comm_seconds: float = 0.0
    comp_seconds: float = 0.0
    precompute_seconds: float = 0.0
    optimization_seconds: float = 0.0

    def charge_shuffle(self, stats: ShuffleStats, impl: str,
                       phase: str = "communication") -> float:
        """Convert a shuffle into model-seconds and accumulate them."""
        alpha = self.params.alpha_for(impl)
        seconds = stats.tuple_copies / alpha \
            + stats.blocks_fetched * self.params.block_latency
        self.tuples_shuffled += stats.tuple_copies
        self.blocks_fetched += stats.blocks_fetched
        self.rounds += 1
        self._add_phase(phase, seconds)
        return seconds

    def charge_worker_work(self, work_by_worker: dict[int, float],
                           rate: float | None = None,
                           phase: str = "computation") -> float:
        """Parallel computation: the makespan of per-worker work."""
        rate = rate if rate is not None else self.params.beta_work
        for w, units in work_by_worker.items():
            self.worker_work[w] = self.worker_work.get(w, 0.0) + units
        seconds = max(work_by_worker.values(), default=0.0) / rate
        self._add_phase(phase, seconds)
        return seconds

    def charge_seconds(self, seconds: float, phase: str) -> None:
        self._add_phase(phase, seconds)

    def _add_phase(self, phase: str, seconds: float) -> None:
        if phase == "communication":
            self.comm_seconds += seconds
        elif phase == "computation":
            self.comp_seconds += seconds
        elif phase == "precompute":
            self.precompute_seconds += seconds
        elif phase == "optimization":
            self.optimization_seconds += seconds
        else:
            raise ConfigError(f"unknown phase {phase!r}")

    def breakdown(self) -> CostBreakdown:
        return CostBreakdown(
            optimization=self.optimization_seconds,
            precompute=self.precompute_seconds,
            communication=self.comm_seconds,
            computation=self.comp_seconds,
        )
