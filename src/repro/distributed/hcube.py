"""HCube: one-round hypercube shuffling (Sec. II and Sec. V).

The output space of a join is divided into ``prod_A p_A`` hypercubes; a
tuple of relation R is routed to every cube whose coordinate matches the
tuple's hash values on attrs(R) (wildcards elsewhere).  Each worker owns
one or more cubes and evaluates them independently — no further exchange
is needed because every output tuple's coordinate is fully determined by
its attribute hashes, so exactly one cube produces it.

Three implementations are modelled after Sec. V (Fig. 9):

- ``push``  — classic map/reduce tuple-at-a-time routing: every
  (tuple, cube) pair is a message.
- ``pull``  — tuples are grouped into blocks keyed by their hash
  signature; each worker pulls each needed block once, so copies are
  counted per (tuple, worker) and per-block latency applies.
- ``merge`` — like pull but blocks are pre-built tries (three arrays),
  which serialize better and spare the worker the local trie build; the
  cost model charges ``trie_merge_rate`` instead of ``trie_build_rate``.

All three move identical data — the implementations differ only in the
accounted cost, exactly like the paper's Spark prototype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..errors import OutOfMemory, PlanError
from ..obs.tracing import current_tracer
from ..query.query import Atom, JoinQuery
from .metrics import ShuffleStats
from .partitioner import Shares

__all__ = [
    "mix_hash",
    "modulo_hash",
    "HypercubeGrid",
    "HCubeRouting",
    "HCubeShuffleResult",
    "localized_query",
    "local_atom_name",
    "hcube_route",
    "hcube_shuffle",
    "MEMORY_FOOTPRINT",
]

_MIX = np.int64(0x9E3779B1)

#: Effective memory footprint per received tuple, by implementation.
#: Tuple-at-a-time (Push) shuffling materializes per-tuple headers and
#: spill buffers (the Spark behaviour behind the paper's OK-dataset OOM:
#: "the original HCube implementation shuffles too many tuples, which
#: causes memory-overflow"); block pulls are denser, and Merge ships
#: tries (three flat arrays) with no per-tuple overhead at all.
MEMORY_FOOTPRINT = {"push": 3.0, "pull": 1.2, "merge": 1.0}


def mix_hash(values: np.ndarray, buckets: int, salt: int = 0) -> np.ndarray:
    """Multiplicative mixing hash into ``buckets`` partitions."""
    if buckets == 1:
        return np.zeros(values.shape, dtype=np.int64)
    with np.errstate(over="ignore"):
        mixed = (values + np.int64(salt + 1)) * _MIX
        mixed ^= mixed >> 16
    return np.abs(mixed) % buckets


def modulo_hash(values: np.ndarray, buckets: int, salt: int = 0) -> np.ndarray:
    """The paper's example hash h_i(x) = x % p_i (tests / examples only)."""
    if buckets == 1:
        return np.zeros(values.shape, dtype=np.int64)
    return np.abs(values) % buckets


HashFn = Callable[[np.ndarray, int, int], np.ndarray]


def local_atom_name(atom: Atom, index: int) -> str:
    """Name of atom ``index``'s slice inside a cube-local database."""
    return f"{atom.relation}@{index}"


def localized_query(query: JoinQuery) -> JoinQuery:
    """The query rewritten against cube-local relation names.

    Needed because two atoms may reference the same stored relation under
    different variables (self-joins on a graph); locally each atom owns
    its own hashed slice.
    """
    return JoinQuery(
        [Atom(local_atom_name(a, i), a.attributes)
         for i, a in enumerate(query.atoms)],
        name=query.name,
    )


class HypercubeGrid:
    """The coordinate grid induced by a share vector."""

    def __init__(self, query: JoinQuery, shares: Shares | Mapping[str, int],
                 num_workers: int, hash_fn: HashFn = mix_hash):
        self.query = query
        self.shares: dict[str, int] = (
            shares.as_dict if isinstance(shares, Shares) else dict(shares))
        missing = set(query.attributes) - set(self.shares)
        if missing:
            raise PlanError(f"shares missing for attributes {missing}")
        for attr, p in self.shares.items():
            if p < 1:
                raise PlanError(f"share p_{attr} = {p} must be >= 1")
        if num_workers < 1:
            raise PlanError("need at least one worker")
        self.num_workers = num_workers
        self.hash_fn = hash_fn
        self.order = query.attributes
        self.dims = tuple(self.shares[a] for a in self.order)
        self.num_cubes = int(np.prod(self.dims)) if self.dims else 1

    # -- coordinates -------------------------------------------------------------

    def coordinate_of(self, cube_index: int) -> tuple[int, ...]:
        """Mixed-radix decode of a cube index into its coordinate."""
        coord = []
        rest = cube_index
        for p in reversed(self.dims):
            coord.append(rest % p)
            rest //= p
        return tuple(reversed(coord))

    def cube_index_of(self, coordinate: Sequence[int]) -> int:
        idx = 0
        for c, p in zip(coordinate, self.dims):
            if not (0 <= c < p):
                raise PlanError(f"coordinate {coordinate} out of range")
            idx = idx * p + c
        return idx

    def worker_of_cube(self, cube_index: int) -> int:
        """Round-robin cube-to-worker assignment."""
        return cube_index % self.num_workers

    def cubes_of_worker(self, worker: int) -> list[int]:
        return list(range(worker, self.num_cubes, self.num_workers))

    # -- per-atom block keys -------------------------------------------------------

    def atom_attr_positions(self, atom: Atom) -> list[int]:
        return [self.order.index(a) for a in atom.attributes]

    def tuple_block_ids(self, atom: Atom, data: np.ndarray) -> np.ndarray:
        """Mixed-radix block id per tuple over the atom's hashed columns."""
        ids = np.zeros(data.shape[0], dtype=np.int64)
        for col, attr in enumerate(atom.attributes):
            p = self.shares[attr]
            ids = ids * p + self.hash_fn(data[:, col],
                                         p, self.order.index(attr))
        return ids

    def cube_block_id(self, atom: Atom, coordinate: Sequence[int]) -> int:
        """Block id an atom contributes to a given cube coordinate."""
        block = 0
        for attr in atom.attributes:
            pos = self.order.index(attr)
            block = block * self.shares[attr] + int(coordinate[pos])
        return block


@dataclass
class HCubeRouting:
    """Routing-only outcome of an HCube shuffle: assignments, not copies.

    ``atom_rows[ai][cube]`` holds the row indices of atom ``ai``'s source
    relation that belong to ``cube``.  No tuple is materialized — the
    data plane (:mod:`repro.runtime.transport`) decides whether those
    assignments become pickled partition matrices or shared-memory
    descriptors.  Stats are identical to the materializing shuffle by
    construction (:func:`hcube_shuffle` is implemented on top of this).
    """

    grid: HypercubeGrid
    impl: str
    atom_rows: list[list[np.ndarray]]
    stats: ShuffleStats
    worker_loads: dict[int, int] = field(default_factory=dict)
    prebuilt_tries: bool = False

    @property
    def local_query(self) -> JoinQuery:
        return localized_query(self.grid.query)

    def materialize(self, db: Database) -> "HCubeShuffleResult":
        """Copy the routed rows into per-cube local databases."""
        query = self.grid.query
        num_cubes = self.grid.num_cubes
        cube_relations: list[list[Relation]] = [[] for _ in range(num_cubes)]
        for ai, atom in enumerate(query.atoms):
            data = db[atom.relation].data
            local_name = local_atom_name(atom, ai)
            for cube in range(num_cubes):
                cube_relations[cube].append(
                    Relation(local_name, atom.attributes,
                             data[self.atom_rows[ai][cube]], dedup=False))
        return HCubeShuffleResult(
            grid=self.grid,
            impl=self.impl,
            cube_databases=[Database(rels) for rels in cube_relations],
            stats=self.stats,
            worker_loads=self.worker_loads,
            prebuilt_tries=self.prebuilt_tries,
        )


@dataclass
class HCubeShuffleResult:
    """Outcome of one (materialized) HCube shuffle."""

    grid: HypercubeGrid
    impl: str
    cube_databases: list[Database]
    stats: ShuffleStats
    worker_loads: dict[int, int] = field(default_factory=dict)
    prebuilt_tries: bool = False

    @property
    def local_query(self) -> JoinQuery:
        return localized_query(self.grid.query)


def _route_atom(grid: HypercubeGrid, atom: Atom, data: np.ndarray,
                impl: str, coords: Sequence[tuple[int, ...]]
                ) -> tuple[list[np.ndarray], int, int, int, dict[int, int]]:
    """Route one atom's tuples: rows per cube plus this atom's counters.

    Self-contained on purpose — atoms route independently, so
    :func:`hcube_route` may fan atoms out over a coordinator thread pool
    (pipelined epochs) and merge the returned counters in atom order,
    keeping stats bit-identical to the serial pass.

    Returns ``(rows_per_cube, tuple_copies, blocks_fetched, bytes_copied,
    worker_load_delta)``.

    Opens a ``route_atom`` span per call; when atoms fan out over the
    routing pool the spans land on distinct thread ids, so the trace
    shows the routing overlap directly.
    """
    with current_tracer().span("route_atom", cat="route",
                               atom=atom.relation,
                               tuples=int(data.shape[0])):
        return _route_atom_body(grid, atom, data, impl, coords)


def _route_atom_body(grid: HypercubeGrid, atom: Atom, data: np.ndarray,
                     impl: str, coords: Sequence[tuple[int, ...]]
                     ) -> tuple[list[np.ndarray], int, int, int,
                                dict[int, int]]:
    block_ids = grid.tuple_block_ids(atom, data)
    order = np.argsort(block_ids, kind="stable")
    sorted_ids = block_ids[order]
    boundaries = np.searchsorted(
        sorted_ids, np.arange(0, 1 + int(sorted_ids.max(initial=0)) + 1))

    def block_rows(block: int) -> np.ndarray:
        if block + 1 >= boundaries.shape[0]:
            return order[0:0]
        return order[boundaries[block]:boundaries[block + 1]]

    rows_per_cube: list[np.ndarray] = []
    tuple_copies = 0
    blocks_fetched = 0
    loads: dict[int, int] = {}
    seen_by_worker: dict[int, set[int]] = {}
    for cube in range(grid.num_cubes):
        block = grid.cube_block_id(atom, coords[cube])
        rows = block_rows(block)
        rows_per_cube.append(rows)
        size = int(rows.shape[0])
        worker = grid.worker_of_cube(cube)
        if impl == "push":
            # Tuple-at-a-time: every (tuple, cube) pair is a message.
            tuple_copies += size
            loads[worker] = loads.get(worker, 0) + size
        else:
            # Block pull: a worker fetches each distinct block once.
            seen = seen_by_worker.setdefault(worker, set())
            if size and block not in seen:
                seen.add(block)
                tuple_copies += size
                blocks_fetched += 1
                loads[worker] = loads.get(worker, 0) + size
    # Bytes move at the relation's actual element width (an older
    # version hardcoded 8, over-counting narrow dtypes).
    bytes_copied = tuple_copies * atom.arity * data.dtype.itemsize
    return rows_per_cube, tuple_copies, blocks_fetched, bytes_copied, loads


def hcube_route(query: JoinQuery, db: Database, grid: HypercubeGrid,
                impl: str = "pull",
                memory_tuples: float | None = None,
                routing_threads: int | None = None) -> HCubeRouting:
    """Compute per-cube routing assignments without copying any tuple.

    Returns row indices per (atom, cube) plus the same
    :class:`ShuffleStats` / OOM accounting as the materializing
    :func:`hcube_shuffle` — the modeled cluster's data movement does not
    depend on which physical transport later carries it.

    ``routing_threads`` > 1 routes atoms concurrently on a coordinator
    thread pool (the hashing/argsort work is per-atom independent);
    counters are merged in atom order afterwards, so the result —
    routing assignments *and* stats — is identical to the serial pass.
    """
    if impl not in ("push", "pull", "merge"):
        raise PlanError(f"unknown HCube implementation {impl!r}")
    stats = ShuffleStats()
    num_cubes = grid.num_cubes
    atom_rows: list[list[np.ndarray]] = []
    worker_loads: dict[int, int] = {w: 0 for w in range(grid.num_workers)}
    coords = [grid.coordinate_of(c) for c in range(num_cubes)]

    atom_data: list[np.ndarray] = []
    for atom in query.atoms:
        rel = db[atom.relation]
        if rel.arity != atom.arity:
            raise PlanError(f"atom {atom} does not match relation {rel.name}")
        atom_data.append(rel.data)

    threads = int(routing_threads or 1)
    with current_tracer().span("route", cat="route", impl=impl,
                               atoms=len(query.atoms), cubes=num_cubes,
                               threads=threads):
        if threads > 1 and len(query.atoms) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                    max_workers=min(threads, len(query.atoms)),
                    thread_name_prefix="repro-route") as pool:
                routed = list(pool.map(
                    _route_atom,
                    (grid for _ in query.atoms), query.atoms, atom_data,
                    (impl for _ in query.atoms),
                    (coords for _ in query.atoms)))
        else:
            routed = [_route_atom(grid, atom, data, impl, coords)
                      for atom, data in zip(query.atoms, atom_data)]

    # Merge in atom order — deterministic regardless of thread timing.
    for rows_per_cube, copies, fetched, nbytes, loads in routed:
        stats.tuple_copies += copies
        stats.blocks_fetched += fetched
        stats.bytes_copied += nbytes
        for worker, load in loads.items():
            worker_loads[worker] += load
        atom_rows.append(rows_per_cube)

    stats.max_worker_tuples = max(worker_loads.values(), default=0)
    if memory_tuples is not None:
        footprint = MEMORY_FOOTPRINT[impl]
        for worker, load in worker_loads.items():
            if load * footprint > memory_tuples:
                raise OutOfMemory(worker, int(load * footprint),
                                  int(memory_tuples))
    return HCubeRouting(
        grid=grid,
        impl=impl,
        atom_rows=atom_rows,
        stats=stats,
        worker_loads=worker_loads,
        prebuilt_tries=(impl == "merge"),
    )


def hcube_shuffle(query: JoinQuery, db: Database, grid: HypercubeGrid,
                  impl: str = "pull",
                  memory_tuples: float | None = None) -> HCubeShuffleResult:
    """Route every atom's tuples to the cubes that need them.

    Returns per-cube local databases (relation names follow
    :func:`local_atom_name`, columns renamed to query variables) plus the
    :class:`ShuffleStats` for the chosen implementation's accounting.
    Implemented as :func:`hcube_route` + materialization, so routing
    assignments and materialized partitions can never diverge.
    """
    return hcube_route(query, db, grid, impl=impl,
                       memory_tuples=memory_tuples).materialize(db)
