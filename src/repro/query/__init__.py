"""Query layer: join queries, hypergraphs, parser, paper catalog."""

from .catalog import (
    PAPER_QUERIES,
    easy_query_names,
    example_query,
    hard_query_names,
    paper_query,
    triangle_query,
)
from .hypergraph import Hypergraph
from .parser import parse_query
from .query import Atom, JoinQuery
from .spj import Predicate, SPJQuery, evaluate_spj, push_down_selections

__all__ = [
    "Predicate",
    "SPJQuery",
    "evaluate_spj",
    "push_down_selections",
    "Atom",
    "JoinQuery",
    "Hypergraph",
    "parse_query",
    "PAPER_QUERIES",
    "paper_query",
    "example_query",
    "triangle_query",
    "hard_query_names",
    "easy_query_names",
]
