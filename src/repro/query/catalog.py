"""The paper's query catalog (Fig. 7) plus the running example (Eq. 2).

Q1-Q6 are spelled out in Sec. VII-A and transcribed verbatim.  Q7-Q11
appear only as pictures; the paper omits their results because "they can
be computed fast", so we reconstruct them as the standard easy 3-5 node
patterns (path, star, square, 5-cycle, tailed triangle) — they are used
for correctness tests, not for reproduced figures.

Every query is a subgraph query: each atom is one edge of the pattern and
all atoms point at the *same* input graph, instantiated per test-case by
:mod:`repro.workloads` with one relation copy per atom (Sec. VII-A).
"""

from __future__ import annotations

from .query import Atom, JoinQuery

__all__ = [
    "triangle_query",
    "example_query",
    "PAPER_QUERIES",
    "paper_query",
    "hard_query_names",
    "easy_query_names",
]


def _edges_query(name: str, edges: list[tuple[str, str]]) -> JoinQuery:
    atoms = [Atom(f"R{i + 1}", (u, v)) for i, (u, v) in enumerate(edges)]
    return JoinQuery(atoms, name=name)


def triangle_query() -> JoinQuery:
    """Q1, the triangle: R1(a,b) >< R2(b,c) >< R3(a,c)."""
    return _edges_query("Q1", [("a", "b"), ("b", "c"), ("a", "c")])


def _q2() -> JoinQuery:
    # 4-clique on {a,b,c,d}.
    return _edges_query("Q2", [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c"), ("b", "d"),
    ])


def _q3() -> JoinQuery:
    # 5-clique on {a,b,c,d,e} (10 edges, exactly as listed in Sec. VII-A).
    return _edges_query("Q3", [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        ("b", "d"), ("b", "e"), ("c", "a"), ("c", "e"), ("a", "d"),
    ])


def _q4() -> JoinQuery:
    # 5-cycle plus the (b,e) chord ("house").
    return _edges_query("Q4", [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        ("b", "e"),
    ])


def _q5() -> JoinQuery:
    # Q4 plus the (b,d) chord.
    return _edges_query("Q5", [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        ("b", "e"), ("b", "d"),
    ])


def _q6() -> JoinQuery:
    # Q5 plus the (c,e) chord.
    return _edges_query("Q6", [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        ("b", "e"), ("b", "d"), ("c", "e"),
    ])


def _q7() -> JoinQuery:
    # Path of length two (reconstructed; Fig. 7 picture only).
    return _edges_query("Q7", [("a", "b"), ("b", "c")])


def _q8() -> JoinQuery:
    # Star with three leaves (reconstructed).
    return _edges_query("Q8", [("a", "b"), ("a", "c"), ("a", "d")])


def _q9() -> JoinQuery:
    # 4-cycle (reconstructed).
    return _edges_query("Q9", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])


def _q10() -> JoinQuery:
    # 5-cycle (reconstructed).
    return _edges_query("Q10", [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
    ])


def _q11() -> JoinQuery:
    # Tailed triangle (reconstructed).
    return _edges_query("Q11", [
        ("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"),
    ])


def example_query() -> JoinQuery:
    """The running example of Eq. (2):

    ``Q(a,b,c,d,e) :- R1(a,b,c) >< R2(a,d) >< R3(c,d) >< R4(b,e) >< R5(c,e)``
    """
    return JoinQuery(
        [
            Atom("R1", ("a", "b", "c")),
            Atom("R2", ("a", "d")),
            Atom("R3", ("c", "d")),
            Atom("R4", ("b", "e")),
            Atom("R5", ("c", "e")),
        ],
        name="Qex",
    )


PAPER_QUERIES: dict[str, JoinQuery] = {
    "Q1": triangle_query(),
    "Q2": _q2(),
    "Q3": _q3(),
    "Q4": _q4(),
    "Q5": _q5(),
    "Q6": _q6(),
    "Q7": _q7(),
    "Q8": _q8(),
    "Q9": _q9(),
    "Q10": _q10(),
    "Q11": _q11(),
}


def paper_query(name: str) -> JoinQuery:
    """Fetch a catalog query by name ('Q1' ... 'Q11')."""
    try:
        return PAPER_QUERIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; choose from {tuple(PAPER_QUERIES)}"
        ) from None


def hard_query_names() -> tuple[str, ...]:
    """Queries the paper reports results for (Sec. VII-A)."""
    return ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")


def easy_query_names() -> tuple[str, ...]:
    """Queries the paper omits as uniformly fast."""
    return ("Q7", "Q8", "Q9", "Q10", "Q11")
