"""A small textual syntax for join queries.

Accepted forms::

    Q(a, b, c) :- R1(a, b), R2(b, c), R3(a, c)
    R1(a, b) >< R2(b, c) >< R3(a, c)

The head, when present, must list exactly the union of body variables
(natural joins have no projection in this library).
"""

from __future__ import annotations

import re

from ..errors import QueryParseError
from .query import Atom, JoinQuery

__all__ = ["parse_query"]

_ATOM_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*\(\s*([^()]*?)\s*\)\s*")


def _parse_atom(text: str) -> Atom:
    m = _ATOM_RE.fullmatch(text)
    if not m:
        raise QueryParseError(f"cannot parse atom {text!r}")
    name, args = m.group(1), m.group(2)
    attrs = tuple(a.strip() for a in args.split(",") if a.strip())
    if not attrs:
        raise QueryParseError(f"atom {text!r} has no attributes")
    return Atom(name, attrs)


def _split_atoms(body: str) -> list[str]:
    """Split on commas / join symbols that sit *between* atoms."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError(f"unbalanced parentheses in {body!r}")
        if depth == 0 and ch in ",&":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise QueryParseError(f"unbalanced parentheses in {body!r}")
    parts.append("".join(current))
    cleaned = []
    for p in parts:
        p = p.replace("><", " ").replace("|><|", " ")
        for chunk in _ATOM_RE.finditer(p):
            cleaned.append(chunk.group(0))
    return cleaned


def parse_query(text: str, name: str | None = None) -> JoinQuery:
    """Parse a join query from text (see module docstring for the syntax)."""
    text = text.strip()
    if not text:
        raise QueryParseError("empty query text")
    head_attrs: tuple[str, ...] | None = None
    query_name = name or "Q"
    if ":-" in text:
        head_text, body = text.split(":-", 1)
        head = _parse_atom(head_text)
        head_attrs = head.attributes
        if name is None:
            query_name = head.relation
    else:
        body = text
    atom_texts = _split_atoms(body)
    if not atom_texts:
        raise QueryParseError(f"no atoms found in {text!r}")
    atoms = [_parse_atom(t) for t in atom_texts]
    query = JoinQuery(atoms, name=query_name)
    if head_attrs is not None and set(head_attrs) != set(query.attributes):
        raise QueryParseError(
            f"head variables {head_attrs} differ from body variables "
            f"{query.attributes}; projection is not supported"
        )
    return query
