"""Select-project-join queries — the paper's stated future work.

The conclusion of the paper: "We shall explore co-optimize computation,
pre-computing, and communication for a query that consists of selection,
projection, and join."  This module provides that front end:

- :class:`Predicate` — per-attribute comparisons (=, !=, <, <=, >, >=);
- :class:`SPJQuery` — selections + a natural join + an optional
  duplicate-eliminating projection;
- selection *pushdown*: each predicate filters every atom containing its
  attribute before any shuffle, shrinking the database the join engines
  (including ADJ) see.

Engines stay unchanged: ``evaluate_spj`` reduces the database, delegates
the join, and projects the result.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..errors import SchemaError
from .query import JoinQuery

__all__ = ["Predicate", "SPJQuery", "push_down_selections", "evaluate_spj"]

_OPS: dict[str, Callable[[np.ndarray, int], np.ndarray]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Predicate:
    """A comparison ``attribute op value`` over a query variable."""

    attribute: str
    op: str
    value: int

    def __post_init__(self):
        if self.op not in _OPS:
            raise SchemaError(
                f"unknown operator {self.op!r}; choose from {sorted(_OPS)}")

    def mask(self, column: np.ndarray) -> np.ndarray:
        return _OPS[self.op](column, np.int64(self.value))

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value}"


@dataclass(frozen=True)
class SPJQuery:
    """sigma_{predicates} ( pi_{projection} ( join ) ) with set semantics."""

    join: JoinQuery
    selections: tuple[Predicate, ...] = ()
    projection: tuple[str, ...] | None = None

    def __post_init__(self):
        attrs = set(self.join.attributes)
        for pred in self.selections:
            if pred.attribute not in attrs:
                raise SchemaError(
                    f"selection on unknown attribute {pred.attribute!r}")
        if self.projection is not None:
            proj = tuple(self.projection)
            object.__setattr__(self, "projection", proj)
            unknown = set(proj) - attrs
            if unknown:
                raise SchemaError(f"projection on unknown attributes "
                                  f"{sorted(unknown)}")
            if len(set(proj)) != len(proj):
                raise SchemaError("projection repeats an attribute")

    def __str__(self) -> str:
        sel = " and ".join(str(p) for p in self.selections) or "true"
        proj = ", ".join(self.projection) if self.projection else "*"
        return f"SELECT {proj} WHERE {sel} FROM {self.join!r}"


def push_down_selections(spj: SPJQuery, db: Database) -> Database:
    """Filter every atom's relation by the predicates on its variables.

    Pushing sigma below the join is always sound for natural joins: a
    tuple failing a predicate on one of its own variables can never
    contribute to a surviving output tuple.  The returned database has
    one (possibly filtered) relation per atom, uniquely named, so
    self-join atoms can be filtered independently.
    """
    out = Database()
    atoms = []
    from .query import Atom

    for i, atom in enumerate(spj.join.atoms):
        rel = db[atom.relation]
        if rel.arity != atom.arity:
            raise SchemaError(f"atom {atom} does not match {rel.name}")
        mask = np.ones(len(rel), dtype=bool)
        for pred in spj.selections:
            if pred.attribute in atom.attributes:
                col = rel.data[:, atom.attributes.index(pred.attribute)]
                mask &= pred.mask(col)
        name = f"{atom.relation}@{i}"
        out.add(Relation(name, rel.attributes, rel.data[mask], dedup=False))
        atoms.append(Atom(name, atom.attributes))
    return out, JoinQuery(atoms, name=spj.join.name)


def evaluate_spj(spj: SPJQuery, db: Database, engine=None, cluster=None
                 ) -> Relation:
    """Evaluate an SPJ query, optionally through a distributed engine.

    Without an engine the join runs with sequential Leapfrog.  With an
    engine + cluster, the (selection-reduced) database is evaluated
    distributedly; projections always apply afterwards with duplicate
    elimination (set semantics).
    """
    from ..wcoj.leapfrog import leapfrog_join

    reduced_db, reduced_query = push_down_selections(spj, db)
    if engine is None:
        result = leapfrog_join(reduced_query, reduced_db,
                               materialize=True).relation
    else:
        if cluster is None:
            raise SchemaError("an engine needs a cluster")
        # Engines return counts; materialize via sequential Leapfrog for
        # the tuples themselves but validate with the engine's count.
        engine_result = engine.run(reduced_query, reduced_db, cluster)
        result = leapfrog_join(reduced_query, reduced_db,
                               materialize=True).relation
        if engine_result.count != len(result):
            raise SchemaError(
                f"engine {engine_result.engine} returned "
                f"{engine_result.count} tuples, expected {len(result)}")
    result = Relation(f"{spj.join.name}_result", spj.join.attributes,
                      result.reorder(spj.join.attributes).data, dedup=False)
    if spj.projection is not None:
        result = result.project(spj.projection,
                                name=f"{spj.join.name}_proj")
    return result
