"""Natural join queries (Eq. 1 of the paper) and their atoms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import SchemaError

__all__ = ["Atom", "JoinQuery"]


@dataclass(frozen=True)
class Atom:
    """One relation occurrence in a join query.

    ``relation`` names a relation in the database; ``attributes`` are the
    query variables bound to its columns, in column order.  The same
    relation may appear in several atoms under different variables (e.g.
    every edge atom of a subgraph query points at the same graph).
    """

    relation: str
    attributes: tuple[str, ...]

    def __post_init__(self):
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        if not attrs:
            raise SchemaError(f"atom {self.relation} has no attributes")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(
                f"atom {self.relation}{attrs} repeats a variable; "
                "self-joins on a variable are not supported"
            )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.attributes)})"


class JoinQuery:
    """A natural join query ``Q :- A1 |><| A2 |><| ... |><| Am``.

    Attributes (query variables) are identified across atoms by name; the
    query's schema is the union of atom schemas in first-appearance order
    (the paper's arbitrary base order ``ord``).
    """

    def __init__(self, atoms: Iterable[Atom | tuple], name: str = "Q"):
        normalized: list[Atom] = []
        for a in atoms:
            if isinstance(a, Atom):
                normalized.append(a)
            else:
                rel, attrs = a
                normalized.append(Atom(rel, tuple(attrs)))
        if len(normalized) < 1:
            raise SchemaError("a join query needs at least one atom")
        self.name = name
        self.atoms: tuple[Atom, ...] = tuple(normalized)
        seen: dict[str, None] = {}
        for atom in self.atoms:
            for attr in atom.attributes:
                seen.setdefault(attr, None)
        self.attributes: tuple[str, ...] = tuple(seen)

    # -- protocol -------------------------------------------------------------

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        body = " >< ".join(str(a) for a in self.atoms)
        return f"{self.name}({', '.join(self.attributes)}) :- {body}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, JoinQuery):
            return NotImplemented
        return self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)

    # -- structure ------------------------------------------------------------

    def atoms_with(self, attr: str) -> tuple[Atom, ...]:
        """Atoms whose schema contains ``attr`` (the paper's R_{i+1})."""
        return tuple(a for a in self.atoms if attr in a.attributes)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(a.relation for a in self.atoms)

    def validate_against(self, db) -> None:
        """Check every atom matches a database relation of the same arity."""
        for atom in self.atoms:
            rel = db[atom.relation]
            if rel.arity != atom.arity:
                raise SchemaError(
                    f"atom {atom} has arity {atom.arity} but relation "
                    f"{rel.name} has arity {rel.arity}"
                )

    def subquery(self, atom_indices: Sequence[int], name: str | None = None
                 ) -> "JoinQuery":
        """The query formed by a subset of atoms (by index)."""
        idx = list(atom_indices)
        if not idx:
            raise SchemaError("subquery needs at least one atom")
        return JoinQuery([self.atoms[i] for i in idx],
                         name=name or f"{self.name}[{','.join(map(str, idx))}]")

    def project_onto(self, attrs: Sequence[str], name: str | None = None
                     ) -> "JoinQuery":
        """Atoms restricted (projected) to a subset of attributes.

        Atoms with no attribute in ``attrs`` are dropped; the others keep
        only the retained variables.  This is the *prefix query* used to
        count Leapfrog partial bindings: a prefix tuple survives iff its
        projection is in every atom's projection (semijoin semantics).
        Note the resulting atoms are *projections* of the stored relations;
        engines must project the data accordingly.
        """
        keep = set(attrs)
        new_atoms = []
        for atom in self.atoms:
            sub = tuple(a for a in atom.attributes if a in keep)
            if sub:
                new_atoms.append(Atom(atom.relation, sub))
        if not new_atoms:
            raise SchemaError(f"no atom overlaps attributes {attrs}")
        return JoinQuery(new_atoms, name=name or f"{self.name}|prefix")

    def is_connected(self) -> bool:
        """True iff the query hypergraph is connected."""
        if not self.atoms:
            return True
        remaining = set(range(1, len(self.atoms)))
        frontier_attrs = set(self.atoms[0].attributes)
        changed = True
        while changed and remaining:
            changed = False
            for i in list(remaining):
                if frontier_attrs & set(self.atoms[i].attributes):
                    frontier_attrs |= set(self.atoms[i].attributes)
                    remaining.discard(i)
                    changed = True
        return not remaining
