"""Query hypergraphs H = (V, E): vertices are attributes, edges are schemas."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import SchemaError
from .query import JoinQuery

__all__ = ["Hypergraph"]


class Hypergraph:
    """The hypergraph representation of a join query (Sec. II).

    ``vertices`` are query attributes; ``edges[i]`` is the attribute set of
    atom ``i`` (edge identity is the atom index, so parallel edges with the
    same attribute set are preserved — Q1's three copies of a graph are
    three distinct edges).
    """

    def __init__(self, vertices: Iterable[str],
                 edges: Sequence[frozenset[str] | set[str]]):
        self.vertices: tuple[str, ...] = tuple(vertices)
        vertex_set = set(self.vertices)
        if len(vertex_set) != len(self.vertices):
            raise SchemaError("duplicate vertices in hypergraph")
        self.edges: tuple[frozenset[str], ...] = tuple(
            frozenset(e) for e in edges)
        for i, e in enumerate(self.edges):
            if not e:
                raise SchemaError(f"edge {i} is empty")
            if not e <= vertex_set:
                raise SchemaError(
                    f"edge {i} = {set(e)} uses unknown vertices")

    @classmethod
    def of_query(cls, query: JoinQuery) -> "Hypergraph":
        return cls(query.attributes,
                   [frozenset(a.attributes) for a in query.atoms])

    # -- protocol -------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        edges = ", ".join("{" + ",".join(sorted(e)) + "}" for e in self.edges)
        return f"Hypergraph(V={set(self.vertices)}, E=[{edges}])"

    # -- structure ------------------------------------------------------------

    def edges_with(self, vertex: str) -> tuple[int, ...]:
        """Indices of edges containing ``vertex``."""
        return tuple(i for i, e in enumerate(self.edges) if vertex in e)

    def vertex_neighbors(self, vertex: str) -> frozenset[str]:
        """Vertices sharing an edge with ``vertex`` (excluding itself)."""
        out: set[str] = set()
        for e in self.edges:
            if vertex in e:
                out |= e
        out.discard(vertex)
        return frozenset(out)

    def is_connected(self) -> bool:
        if not self.edges:
            return len(self.vertices) <= 1
        remaining = set(range(1, len(self.edges)))
        frontier = set(self.edges[0])
        changed = True
        while changed and remaining:
            changed = False
            for i in list(remaining):
                if frontier & self.edges[i]:
                    frontier |= self.edges[i]
                    remaining.discard(i)
                    changed = True
        covered = frontier | {v for i in remaining for v in self.edges[i]}
        return not remaining and covered >= set(self.vertices)

    def induced_by_edges(self, edge_indices: Sequence[int]) -> "Hypergraph":
        """Subhypergraph of a subset of edges (vertices restricted to them)."""
        idx = list(edge_indices)
        edges = [self.edges[i] for i in idx]
        verts = [v for v in self.vertices if any(v in e for e in edges)]
        return Hypergraph(verts, edges)

    def is_alpha_acyclic(self) -> bool:
        """GYO reduction test for alpha-acyclicity.

        Repeatedly (a) remove *ear* vertices that appear in exactly one
        edge, and (b) remove edges contained in another edge.  The
        hypergraph is alpha-acyclic iff everything vanishes.
        """
        edges = [set(e) for e in self.edges]
        changed = True
        while changed:
            changed = False
            # Rule (b): drop edges contained in another edge.
            kept: list[set[str]] = []
            for i, e in enumerate(edges):
                contained = any(
                    j != i and e <= other
                    and (e != other or j < i)  # drop one of two equal edges
                    for j, other in enumerate(edges)
                )
                if contained:
                    changed = True
                else:
                    kept.append(e)
            edges = kept
            # Rule (a): remove vertices occurring in exactly one edge.
            counts: dict[str, int] = {}
            for e in edges:
                for v in e:
                    counts[v] = counts.get(v, 0) + 1
            for e in edges:
                lonely = {v for v in e if counts[v] == 1}
                if lonely:
                    e -= lonely
                    changed = True
            edges = [e for e in edges if e]
        return not edges
