"""Leapfrog triejoin (Algorithm 1 of the paper; Veldhuizen 2012).

Two implementations are provided:

- :func:`leapfrog_join` — the production path: per attribute, the sorted
  distinct candidate arrays of all participating tries are intersected
  with vectorized binary searches, and the recursion batches the deepest
  level.  It is instrumented with the per-level intermediate-tuple
  counters the paper plots in Fig. 6 / Fig. 8, supports a fixed-value
  constraint (the sampler's ``T_{A=a}``), an optional intersection cache
  (CacheTrieJoin behaviour) and a deterministic work budget (the paper's
  12-hour timeout analogue).

- :func:`leapfrog_reference` — a faithful transcription of the classic
  iterator-based leapfrog search (seek/next on :class:`TrieIterator`),
  used by the test-suite to cross-validate the production path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..data.trie import Trie
from ..errors import BudgetExceeded, PlanError
from ..query.query import JoinQuery
from .cache import IntersectionCache

__all__ = [
    "LeapfrogStats",
    "JoinResult",
    "build_tries",
    "leapfrog_join",
    "leapfrog_reference",
    "intersect_sorted",
]


@dataclass
class LeapfrogStats:
    """Instrumentation of one Leapfrog execution.

    ``level_tuples[i]`` counts the partial bindings produced when the
    (i+1)-th attribute of the order was bound — the paper's |T_{i+1}|
    totals used in Fig. 6 and Fig. 8.
    """

    level_tuples: list[int] = field(default_factory=list)
    level_work: list[int] = field(default_factory=list)
    level_extensions: list[int] = field(default_factory=list)
    intersection_work: int = 0     # elements touched while intersecting
    extensions: int = 0            # partial bindings that were extended
    emitted: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_intermediate(self) -> int:
        """All intermediate tuples (excludes the final output level)."""
        return sum(self.level_tuples[:-1]) if self.level_tuples else 0

    @property
    def total_tuples(self) -> int:
        return sum(self.level_tuples)

    def level_fractions(self) -> list[float]:
        """Per-level share of all produced tuples (Fig. 6's percentages)."""
        total = self.total_tuples
        if total == 0:
            return [0.0 for _ in self.level_tuples]
        return [t / total for t in self.level_tuples]


@dataclass
class JoinResult:
    """Outcome of a join execution."""

    count: int
    stats: LeapfrogStats
    relation: Relation | None = None

    def __post_init__(self):
        if self.relation is not None and len(self.relation) != self.count:
            raise PlanError(
                f"materialized {len(self.relation)} tuples but counted "
                f"{self.count}"
            )


def _atom_trie_order(atom_attrs: Sequence[str], order: Sequence[str]
                     ) -> tuple[str, ...]:
    """Atom attributes sorted by their position in the global order."""
    pos = {a: i for i, a in enumerate(order)}
    return tuple(sorted(atom_attrs, key=pos.__getitem__))


def build_tries(query: JoinQuery, db: Database, order: Sequence[str]
                ) -> list[Trie]:
    """One trie per atom, columns renamed to query variables and sorted
    consistently with the global attribute order."""
    order = tuple(order)
    tries = []
    for atom in query.atoms:
        rel = db[atom.relation]
        if rel.arity != atom.arity:
            raise PlanError(
                f"atom {atom} arity mismatch with relation {rel.name}")
        renamed = Relation(rel.name, atom.attributes, rel.data, dedup=False)
        tries.append(Trie(renamed, order=_atom_trie_order(
            atom.attributes, order)))
    return tries


def intersect_sorted(arrays: Sequence[np.ndarray],
                     stats: LeapfrogStats | None = None) -> np.ndarray:
    """Intersection of sorted unique int64 arrays, smallest-first.

    Work is accounted as the total number of elements touched, the
    deterministic unit behind the paper's computation-cost seconds.
    """
    if not arrays:
        return np.empty(0, dtype=np.int64)
    arrays = sorted(arrays, key=len)
    result = arrays[0]
    if stats is not None:
        stats.intersection_work += sum(len(a) for a in arrays)
    for other in arrays[1:]:
        if result.shape[0] == 0:
            break
        idx = np.searchsorted(other, result)
        idx[idx == other.shape[0]] = other.shape[0] - 1 if other.shape[0] else 0
        if other.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        result = result[other[idx] == result]
    return result


def leapfrog_join(query: JoinQuery, db: Database,
                  order: Sequence[str] | None = None, *,
                  materialize: bool = False,
                  fixed: Mapping[str, int] | None = None,
                  cache: IntersectionCache | None = None,
                  budget: int | None = None,
                  emit: Callable[[list[int], np.ndarray], None] | None = None,
                  tries: Sequence[Trie] | None = None,
                  stats: LeapfrogStats | None = None) -> JoinResult:
    """Evaluate ``query`` over ``db`` with Leapfrog triejoin.

    Parameters
    ----------
    order:
        Global attribute order (defaults to the query's base order).
    materialize:
        Collect result tuples into a relation (attributes = ``order``).
    fixed:
        Attribute -> value constraints (the sampler fixes the first
        attribute: ``T_{A=a}``).
    cache:
        Optional :class:`IntersectionCache`; intersections are memoized
        per (depth, participant ranges).
    budget:
        Maximum intersection work before :class:`BudgetExceeded`.
    emit:
        Callback ``(prefix, values)`` invoked per full-binding batch:
        the output rows are ``prefix + [v]`` for v in values.
    tries:
        Pre-built tries (one per atom, orders consistent with ``order``);
        built on the fly when omitted.
    stats:
        Caller-owned stats object, reset and populated in place — useful
        to inspect partial counts after a :class:`BudgetExceeded`.
    """
    order = tuple(order) if order is not None else query.attributes
    if set(order) != set(query.attributes):
        raise PlanError(
            f"order {order} is not a permutation of query attributes "
            f"{query.attributes}"
        )
    if tries is None:
        tries = build_tries(query, db, order)
    n = len(order)
    if stats is None:
        stats = LeapfrogStats()
    stats.level_tuples = [0] * n
    stats.level_work = [0] * n
    stats.level_extensions = [0] * n
    stats.intersection_work = 0
    stats.extensions = 0
    stats.emitted = 0
    fixed = dict(fixed or {})
    for attr in fixed:
        if attr not in order:
            raise PlanError(f"fixed attribute {attr!r} not in query")

    # participants[d] = [(atom index, local trie depth)] for order[d].
    participants: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for ai, atom in enumerate(query.atoms):
        trie_order = tries[ai].attributes
        for local_depth, attr in enumerate(trie_order):
            participants[order.index(attr)].append((ai, local_depth))
    for d, parts in enumerate(participants):
        if not parts:
            raise PlanError(f"attribute {order[d]!r} appears in no atom")

    ranges: list[tuple[int, int]] = [t.root for t in tries]
    out_chunks: list[np.ndarray] = []
    count = 0
    prefix: list[int] = [0] * n

    # The deepest two levels are batched: one numpy pass replaces the
    # per-binding Python recursion into ``expand(n - 1)``.  Disabled
    # whenever a feature needs the per-binding structure (budget checks
    # between bindings, the intersection cache's per-node keys, emit
    # callbacks, or a fixed value at the last attribute).  Counters stay
    # bit-identical to the recursive path.
    batch_leaf = (n >= 2 and budget is None and cache is None
                  and emit is None and order[n - 1] not in fixed)
    prev_pos = ({ai: p for p, (ai, _) in enumerate(participants[n - 2])}
                if n >= 2 else {})

    def expand_leaf_batch(vals: np.ndarray, resolved: list) -> bool:
        """Evaluate the last level for every binding of level ``n - 2``.

        ``vals``/``resolved`` are the candidates of level ``n - 2``.  Per
        last-level participant the candidate values of *all* ``k``
        bindings are gathered in one shot (the trie's last local column
        is sorted and distinct inside each child range), the k
        intersections run as one sorted-set intersection over
        ``binding_index * width + value`` keys, and the result chunk is
        written column-wise.  Returns False when the value range would
        overflow the int64 key encoding — the caller falls back to the
        recursive path.
        """
        nonlocal count
        k = int(vals.shape[0])
        parts = participants[n - 1]
        pairs: list[tuple[np.ndarray, np.ndarray]] = []  # (seg, values)
        work_total = 0
        vmin = vmax = 0
        for ai, ldepth in parts:
            col = tries[ai]._columns[ldepth]
            p = prev_pos.get(ai)
            if p is not None:
                # Varying trie: one child range per binding.
                starts, ends = resolved[p]
                lengths = ends - starts
                total = int(lengths.sum())
                seg = np.repeat(np.arange(k, dtype=np.int64), lengths)
                offsets = np.concatenate(
                    ([0], np.cumsum(lengths)[:-1])).astype(np.int64)
                pos = (np.arange(total, dtype=np.int64)
                       - np.repeat(offsets, lengths)
                       + np.repeat(starts, lengths))
                values = col[pos]
            else:
                # Constant trie: its range did not move at level n - 2.
                lo, hi = ranges[ai]
                block = col[lo:hi]
                total = int(block.shape[0]) * k
                seg = np.repeat(np.arange(k, dtype=np.int64),
                                block.shape[0])
                values = np.tile(block, k)
            work_total += total
            lo_v, hi_v = int(values.min()), int(values.max())
            if not pairs:
                vmin, vmax = lo_v, hi_v
            else:
                vmin, vmax = min(vmin, lo_v), max(vmax, hi_v)
            pairs.append((seg, values))
        width = vmax - vmin + 1
        if len(pairs) > 1 and k * width >= 2 ** 62:
            return False
        stats.extensions += k
        stats.level_extensions[n - 1] += k
        stats.intersection_work += work_total
        stats.level_work[n - 1] += work_total
        if len(pairs) == 1:
            out_seg, out_val = pairs[0]
        else:
            # Keys are sorted (binding-major, values ascending inside a
            # binding), so the standard smallest-first searchsorted
            # intersection applies; work was accounted above.
            keys = sorted((seg * width + (values - np.int64(vmin))
                           for seg, values in pairs), key=len)
            result = keys[0]
            for other in keys[1:]:
                if result.shape[0] == 0:
                    break
                idx = np.searchsorted(other, result)
                idx[idx == other.shape[0]] = other.shape[0] - 1
                result = result[other[idx] == result]
            out_seg = result // width
            out_val = result % width + vmin
        t = int(out_val.shape[0])
        stats.level_tuples[n - 1] += t
        count += t
        stats.emitted += t
        if materialize and t:
            chunk = np.empty((t, n), dtype=np.int64)
            for j in range(n - 2):
                chunk[:, j] = prefix[j]
            chunk[:, n - 2] = vals[out_seg]
            chunk[:, n - 1] = out_val
            out_chunks.append(chunk)
        return True

    def candidates_at(d: int) -> tuple[np.ndarray, list]:
        """Intersected values at depth d plus per-participant child spans."""
        parts = participants[d]
        attr = order[d]
        if attr in fixed:
            # Fast path for the sampler: seek the fixed value directly
            # instead of materializing every participant's candidate array.
            v = int(fixed[attr])
            resolved = []
            stats.intersection_work += len(parts)
            for ai, ldepth in parts:
                lo, hi = ranges[ai]
                l2, h2 = tries[ai].child_range(ldepth, lo, hi, v)
                if l2 >= h2:
                    return np.empty(0, dtype=np.int64), []
                resolved.append((np.array([l2], dtype=np.int64),
                                 np.array([h2], dtype=np.int64)))
            return np.array([v], dtype=np.int64), resolved
        key = None
        if cache is not None:
            key = (d,) + tuple(ranges[ai] for ai, _ in parts)
            hit = cache.get(key)
            if hit is not None:
                stats.cache_hits += 1
                return hit
            stats.cache_misses += 1
        spans = []
        arrays = []
        for ai, ldepth in parts:
            lo, hi = ranges[ai]
            values, starts, ends = tries[ai].children(ldepth, lo, hi)
            arrays.append(values)
            spans.append((values, starts, ends))
        vals = intersect_sorted(arrays, stats)
        # Child span per participant for each surviving value.
        resolved = []
        for values, starts, ends in spans:
            idx = np.searchsorted(values, vals)
            resolved.append((starts[idx], ends[idx]))
        result = (vals, resolved)
        if cache is not None and key is not None:
            cache.put(key, result)
        return result

    def expand(d: int) -> None:
        nonlocal count
        if budget is not None and stats.intersection_work > budget:
            raise BudgetExceeded(stats.intersection_work, budget)
        stats.extensions += 1
        stats.level_extensions[d] += 1
        work_before = stats.intersection_work
        vals, resolved = candidates_at(d)
        stats.level_work[d] += stats.intersection_work - work_before
        k = int(vals.shape[0])
        stats.level_tuples[d] += k
        if k == 0:
            return
        if d == n - 1:
            count += k
            stats.emitted += k
            if emit is not None:
                emit(prefix[:d], vals)
            if materialize:
                chunk = np.empty((k, n), dtype=np.int64)
                for j in range(d):
                    chunk[:, j] = prefix[j]
                chunk[:, d] = vals
                out_chunks.append(chunk)
            return
        if batch_leaf and d == n - 2 and expand_leaf_batch(vals, resolved):
            return
        parts = participants[d]
        saved = [ranges[ai] for ai, _ in parts]
        for i in range(k):
            prefix[d] = int(vals[i])
            for p, (ai, _) in enumerate(parts):
                starts, ends = resolved[p]
                ranges[ai] = (int(starts[i]), int(ends[i]))
            expand(d + 1)
        for p, (ai, _) in enumerate(parts):
            ranges[ai] = saved[p]

    if all(len(t) for t in tries):
        expand(0)
    relation = None
    if materialize:
        data = np.vstack(out_chunks) if out_chunks else np.empty(
            (0, n), dtype=np.int64)
        relation = Relation(f"{query.name}_result", order, data, dedup=False)
    return JoinResult(count=count, stats=stats, relation=relation)


def leapfrog_reference(query: JoinQuery, db: Database,
                       order: Sequence[str] | None = None
                       ) -> list[tuple[int, ...]]:
    """Iterator-based leapfrog search (the textbook algorithm).

    Returns the result tuples in ``order``-major lexicographic order.
    Quadratically slower than :func:`leapfrog_join`; for tests only.
    """
    order = tuple(order) if order is not None else query.attributes
    if set(order) != set(query.attributes):
        raise PlanError(f"order {order} does not match query attributes")
    tries = build_tries(query, db, order)
    if any(len(t) == 0 for t in tries):
        return []
    iterators = [t.iterator() for t in tries]
    participants: list[list[int]] = [[] for _ in order]
    for ai, atom in enumerate(query.atoms):
        for attr in atom.attributes:
            participants[order.index(attr)].append(ai)
    n = len(order)
    out: list[tuple[int, ...]] = []
    binding: list[int] = [0] * n

    def leapfrog_values(iters):
        """Yield the common keys of iterators opened at the same depth."""
        if any(it.at_end for it in iters):
            return
        iters = sorted(iters, key=lambda it: it.key())
        k = len(iters)
        p = 0
        max_key = iters[-1].key()
        while True:
            least = iters[p]
            if least.key() == max_key:
                yield max_key
                least.next()
                if least.at_end:
                    return
                max_key = least.key()
            else:
                least.seek(max_key)
                if least.at_end:
                    return
                max_key = least.key()
            p = (p + 1) % k

    def search(d: int) -> None:
        iters = [iterators[ai] for ai in participants[d]]
        for it in iters:
            it.open()
        for v in leapfrog_values(iters):
            binding[d] = int(v)
            if d == n - 1:
                out.append(tuple(binding))
            else:
                search(d + 1)
        for it in iters:
            it.up()

    search(0)
    return sorted(out)
