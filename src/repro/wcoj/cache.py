"""Bounded LRU cache of per-level intersection results.

This is the mechanism behind the paper's "HCubeJ + Cache" baseline
(CacheTrieJoin, Kalinsky et al.): Leapfrog repeatedly recomputes the same
intersections when different prefixes lead to identical trie ranges, so
caching them trades memory for computation.  The capacity is measured in
*cached values* (array elements), so the engine can size it from whatever
memory HCube left over — the exact effect the paper describes on LJ/OK
where the shuffle eats the memory budget and caching stops helping.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..errors import ConfigError

__all__ = ["IntersectionCache"]


class IntersectionCache:
    """LRU map from intersection keys to (values, spans) results."""

    def __init__(self, capacity_values: int):
        if capacity_values < 0:
            raise ConfigError("capacity must be >= 0")
        self.capacity_values = int(capacity_values)
        self._store: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._used_values = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _entry_size(entry: tuple) -> int:
        vals, resolved = entry
        size = int(vals.shape[0])
        for starts, ends in resolved:
            size += int(starts.shape[0]) + int(ends.shape[0])
        return size

    def get(self, key: tuple):
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: tuple) -> None:
        size = self._entry_size(entry)
        if size > self.capacity_values:
            return  # larger than the whole cache: never admit
        if key in self._store:
            self._used_values -= self._entry_size(self._store.pop(key))
        while self._used_values + size > self.capacity_values and self._store:
            _, old = self._store.popitem(last=False)
            self._used_values -= self._entry_size(old)
            self.evictions += 1
        self._store[key] = entry
        self._used_values += size

    def clear(self) -> None:
        self._store.clear()
        self._used_values = 0

    @property
    def used_values(self) -> int:
        return self._used_values

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return (f"IntersectionCache(entries={len(self)}, "
                f"used={self._used_values}/{self.capacity_values}, "
                f"hits={self.hits}, misses={self.misses})")
