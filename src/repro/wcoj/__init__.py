"""Worst-case optimal joins and sequential baselines."""

from .agm import agm_bound, fractional_edge_cover_number
from .binary_join import (
    BinaryJoinStats,
    BinaryPlan,
    binary_plan_join,
    execute_binary_plan,
    greedy_left_deep_plan,
)
from .cache import IntersectionCache
from .leapfrog import (
    JoinResult,
    LeapfrogStats,
    build_tries,
    intersect_sorted,
    leapfrog_join,
    leapfrog_reference,
)
from .reference import brute_force_join
from .yannakakis import (
    YannakakisStats,
    full_reducer,
    join_reduced,
    materialize_bags,
    yannakakis_join,
)

__all__ = [
    "YannakakisStats",
    "full_reducer",
    "join_reduced",
    "materialize_bags",
    "yannakakis_join",
    "agm_bound",
    "fractional_edge_cover_number",
    "BinaryJoinStats",
    "BinaryPlan",
    "binary_plan_join",
    "execute_binary_plan",
    "greedy_left_deep_plan",
    "IntersectionCache",
    "JoinResult",
    "LeapfrogStats",
    "build_tries",
    "intersect_sorted",
    "leapfrog_join",
    "leapfrog_reference",
    "brute_force_join",
]
