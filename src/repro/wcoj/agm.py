"""AGM worst-case output bounds (Atserias-Grohe-Marx; Sec. VI of the paper).

The AGM bound certifies worst-case optimality of Leapfrog: for any
fractional edge cover x of the query hypergraph, |Q(D)| <= prod_e |R_e|^x_e,
and the minimum over covers is tight.  We solve the cover LP with
``w_e = log |R_e|`` so the exponentiated optimum is the tightest bound.
"""

from __future__ import annotations

import math

from ..data.database import Database
from ..ghd.fractional import fractional_edge_cover, log_agm_exponent
from ..query.hypergraph import Hypergraph
from ..query.query import JoinQuery

__all__ = ["agm_bound", "fractional_edge_cover_number"]


def fractional_edge_cover_number(query: JoinQuery) -> float:
    """rho*(Q): unit-weight fractional edge cover number of the query."""
    return fractional_edge_cover(Hypergraph.of_query(query)).objective


def agm_bound(query: JoinQuery, db: Database) -> float:
    """The tight AGM bound on |Q(D)|.

    Returns 0.0 when any relation is empty (the join is provably empty).
    """
    sizes = [len(db[a.relation]) for a in query.atoms]
    if any(s == 0 for s in sizes):
        return 0.0
    hypergraph = Hypergraph.of_query(query)
    cover = log_agm_exponent(hypergraph, sizes)
    return math.exp(cover.objective)
