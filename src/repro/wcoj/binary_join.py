"""Pairwise (binary) join plans — the substrate of the SparkSQL baseline.

The paper's multi-round competitor decomposes a complex join into a
sequence of binary joins and shuffles every intermediate result.  This
module provides the sequential machinery: greedy left-deep plan selection
and plan execution with intermediate-size tracking (the quantity that
explodes on cyclic queries and produces the Fig. 1(a)/Fig. 12 failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..errors import BudgetExceeded, PlanError
from ..query.query import JoinQuery

__all__ = ["BinaryPlan", "BinaryJoinStats", "greedy_left_deep_plan",
           "greedy_plan_with_estimates", "execute_binary_plan",
           "binary_plan_join"]


@dataclass(frozen=True)
class BinaryPlan:
    """A left-deep pairwise plan: atoms joined in ``atom_order``."""

    atom_order: tuple[int, ...]

    def __post_init__(self):
        if len(set(self.atom_order)) != len(self.atom_order):
            raise PlanError("plan repeats an atom")


@dataclass
class BinaryJoinStats:
    """Sizes of every intermediate relation (the shuffled payloads)."""

    intermediate_sizes: list[int] = field(default_factory=list)
    total_intermediate_tuples: int = 0

    def record(self, size: int) -> None:
        self.intermediate_sizes.append(size)
        self.total_intermediate_tuples += size


def _estimate_join_size(left_size: int, left_attrs: set[str],
                        rel: Relation, atom_attrs: tuple[str, ...]) -> float:
    """Textbook independence estimate of |T >< R|.

    |T||R| / prod over join attrs of max distinct count — the classic
    System-R style formula; used only to *order* atoms greedily, so
    coarse is fine.
    """
    common = [a for a in atom_attrs if a in left_attrs]
    est = float(left_size) * float(len(rel))
    for attr in common:
        est /= max(1, rel.distinct_count(attr))
    return est


def greedy_plan_with_estimates(query: JoinQuery, db: Database
                               ) -> tuple[BinaryPlan, list[float]]:
    """Greedy left-deep plan plus the estimated size of each intermediate.

    The estimates (one per join step, i.e. ``len(atoms) - 1`` entries)
    are what the adaptive kernel chooser compares against the input
    sizes to predict binary-join blowup.
    """
    sizes = [len(db[a.relation]) for a in query.atoms]
    start = int(np.argmin(sizes))
    chosen = [start]
    estimates: list[float] = []
    bound_attrs = set(query.atoms[start].attributes)
    current_size = sizes[start]
    remaining = set(range(query.num_atoms)) - {start}
    while remaining:
        connected = [i for i in remaining
                     if bound_attrs & set(query.atoms[i].attributes)]
        pool = connected or sorted(remaining)  # cartesian only if forced
        best, best_est = None, None
        for i in pool:
            atom = query.atoms[i]
            rel = db[atom.relation].rename(
                dict(zip(db[atom.relation].attributes, atom.attributes)))
            est = _estimate_join_size(current_size, bound_attrs, rel,
                                      atom.attributes)
            if best_est is None or est < best_est:
                best, best_est = i, est
        chosen.append(best)
        estimates.append(float(best_est))
        remaining.discard(best)
        bound_attrs |= set(query.atoms[best].attributes)
        current_size = max(1, int(best_est))
    return BinaryPlan(tuple(chosen)), estimates


def greedy_left_deep_plan(query: JoinQuery, db: Database) -> BinaryPlan:
    """Pick a left-deep atom order: start from the smallest relation, then
    repeatedly add the connected atom with the smallest estimated join."""
    plan, _ = greedy_plan_with_estimates(query, db)
    return plan


def execute_binary_plan(query: JoinQuery, db: Database, plan: BinaryPlan,
                        *, budget: int | None = None,
                        stats: BinaryJoinStats | None = None) -> Relation:
    """Run the plan with real hash joins, tracking intermediate sizes."""
    if set(plan.atom_order) != set(range(query.num_atoms)):
        raise PlanError(
            f"plan {plan.atom_order} does not cover all "
            f"{query.num_atoms} atoms")
    stats = stats if stats is not None else BinaryJoinStats()

    def atom_relation(i: int) -> Relation:
        atom = query.atoms[i]
        rel = db[atom.relation]
        return Relation(f"{atom.relation}#{i}", atom.attributes, rel.data,
                        dedup=False)

    current = atom_relation(plan.atom_order[0])
    for i in plan.atom_order[1:]:
        current = current.natural_join(atom_relation(i))
        stats.record(len(current))
        if budget is not None and stats.total_intermediate_tuples > budget:
            raise BudgetExceeded(stats.total_intermediate_tuples, budget)
    return current.reorder(query.attributes, name=f"{query.name}_result")


def binary_plan_join(query: JoinQuery, db: Database,
                     budget: int | None = None) -> Relation:
    """Greedy plan + execution in one call (reference implementation)."""
    return execute_binary_plan(query, db, greedy_left_deep_plan(query, db),
                               budget=budget)
