"""Slow, obviously-correct join implementations for the test oracle."""

from __future__ import annotations

from itertools import product

from ..data.database import Database
from ..query.query import JoinQuery

__all__ = ["brute_force_join"]


def brute_force_join(query: JoinQuery, db: Database
                     ) -> set[tuple[int, ...]]:
    """Cartesian-product-and-filter evaluation of a join query.

    Returns result tuples over ``query.attributes``.  Exponential; only
    for small oracle databases in tests.
    """
    atom_sets = []
    for atom in query.atoms:
        rel = db[atom.relation]
        atom_sets.append([
            dict(zip(atom.attributes, t)) for t in rel.as_set()
        ])
    out: set[tuple[int, ...]] = set()
    for combo in product(*atom_sets):
        binding: dict[str, int] = {}
        ok = True
        for partial in combo:
            for attr, value in partial.items():
                if binding.setdefault(attr, value) != value:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            out.add(tuple(binding[a] for a in query.attributes))
    return out
