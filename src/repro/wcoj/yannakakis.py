"""Yannakakis' algorithm over a GHD join tree (EmptyHeaded-style).

The paper's related work (Sec. VI) discusses EmptyHeaded [26], which
combines worst-case optimal joins with tree decompositions and
Yannakakis' algorithm [27]: materialize every bag with a WCOJ, run a
*full reducer* (two semijoin sweeps over the join tree) so no dangling
tuples remain, then join bottom-up with output-bounded intermediates.
We implement it both as a sequential evaluator (this module) and as a
distributed engine (:class:`repro.engines.YannakakisJoin`) used by the
ablation benches — it trades ADJ's one-round shuffle for semijoin rounds
and heavy materialization, reproducing EmptyHeaded's memory-hunger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.database import Database
from ..data.relation import Relation
from ..errors import PlanError
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..query.query import JoinQuery
from .leapfrog import leapfrog_join

__all__ = ["YannakakisStats", "materialize_bags", "full_reducer",
           "join_reduced", "yannakakis_join"]


@dataclass
class YannakakisStats:
    """Work accounting of one Yannakakis evaluation."""

    bag_materialize_work: int = 0
    bag_sizes: list[int] = field(default_factory=list)
    semijoin_rounds: int = 0
    semijoin_tuples_scanned: int = 0
    join_intermediate_tuples: int = 0


def _root_and_order(tree: Hypertree) -> tuple[int, list[tuple[int, int]]]:
    """Pick a root and return (root, parent-child edges in BFS order)."""
    root = tree.bags[0].index
    order: list[tuple[int, int]] = []
    seen = {root}
    frontier = [root]
    while frontier:
        u = frontier.pop(0)
        for v in sorted(tree.neighbors(u)):
            if v not in seen:
                seen.add(v)
                order.append((u, v))
                frontier.append(v)
    if len(seen) != tree.num_bags:
        raise PlanError("hypertree is not connected")
    return root, order


def materialize_bags(query: JoinQuery, db: Database, tree: Hypertree,
                     stats: YannakakisStats | None = None,
                     budget: int | None = None,
                     bag_kernels: dict[int, str] | None = None
                     ) -> dict[int, Relation]:
    """Worst-case-optimally materialize every bag's join.

    ``bag_kernels`` maps bag index to a :mod:`repro.kernels` key; bags
    not in the map (or when None) run the historical Leapfrog path.
    """
    out: dict[int, Relation] = {}
    for bag in tree.bags:
        attrs = tuple(a for a in query.attributes if a in bag.attributes)
        sub = JoinQuery([query.atoms[i] for i in bag.atom_indices],
                        name=f"bag{bag.index}")
        key = (bag_kernels or {}).get(bag.index, "wcoj")
        if key != "wcoj":
            # Lazy: repro.kernels imports this module's siblings.
            from ..kernels import create_kernel

            res = create_kernel(key).execute(sub, db, attrs,
                                             materialize=True,
                                             budget=budget)
        else:
            res = leapfrog_join(sub, db, order=attrs, materialize=True,
                                budget=budget)
        rel = Relation(f"bag{bag.index}", attrs, res.relation.data,
                       dedup=False)
        out[bag.index] = rel
        if stats is not None:
            stats.bag_materialize_work += res.stats.intersection_work
            stats.bag_sizes.append(len(rel))
    return out


def full_reducer(tree: Hypertree, bags: dict[int, Relation],
                 stats: YannakakisStats | None = None
                 ) -> dict[int, Relation]:
    """Two semijoin sweeps (leaves-up then root-down): no dangling tuples.

    After reduction, every bag tuple participates in at least one output
    tuple — Yannakakis' guarantee for acyclic instances, applied here to
    the (acyclic) tree of bag relations.
    """
    root, edges = _root_and_order(tree)
    reduced = dict(bags)
    # Leaves-up: parent := parent |>< child, processing deepest first.
    for parent, child in reversed(edges):
        before = len(reduced[parent])
        reduced[parent] = reduced[parent].semijoin(reduced[child])
        if stats is not None:
            stats.semijoin_rounds += 1
            stats.semijoin_tuples_scanned += before + len(reduced[child])
    # Root-down: child := child |>< parent.
    for parent, child in edges:
        before = len(reduced[child])
        reduced[child] = reduced[child].semijoin(reduced[parent])
        if stats is not None:
            stats.semijoin_rounds += 1
            stats.semijoin_tuples_scanned += before + len(reduced[parent])
    return reduced


def join_reduced(query: JoinQuery, tree: Hypertree,
                 reduced: dict[int, Relation],
                 stats: YannakakisStats | None = None) -> Relation:
    """Bottom-up joins of fully-reduced bags (the final Yannakakis phase).

    The full reduction keeps every intermediate bounded by the final
    output extended over the not-yet-joined bag attributes.
    """
    root, edges = _root_and_order(tree)
    current = reduced[root]
    for _, child in edges:
        current = current.natural_join(reduced[child])
        if stats is not None:
            stats.join_intermediate_tuples += len(current)
    return current.reorder(query.attributes, name=f"{query.name}_result")


def yannakakis_join(query: JoinQuery, db: Database,
                    tree: Hypertree | None = None,
                    stats: YannakakisStats | None = None,
                    budget: int | None = None) -> Relation:
    """Evaluate ``query`` via bag materialization + full reduction + joins."""
    tree = tree or optimal_hypertree(query)
    bags = materialize_bags(query, db, tree, stats=stats, budget=budget)
    reduced = full_reducer(tree, bags, stats=stats)
    return join_reduced(query, tree, reduced, stats=stats)
