"""Lightweight nestable spans with Chrome trace-event export.

A :class:`Tracer` records :class:`Span` objects — named wall-clock
intervals tagged with process/thread/host — from every layer of the
runtime: the scheduler's routing pass, the transports' publish/fetch
paths, the executors' submit/map loops, and the per-task worker
functions.  Because spans carry ``(pid, tid, host)``, a single merged
span list *is* the epoch timeline: the pipelined overlap window shows
up as worker-task spans whose intervals intersect the coordinator's
publish spans on different threads.

Design rules (these are load-bearing — see the overhead test in
tests/test_observability.py):

- **Off means free.**  :func:`current_tracer` returns the
  :data:`NOOP_TRACER` singleton unless a recording tracer was installed
  (:func:`use_tracer` / :func:`set_tracer`).  ``NOOP_TRACER.span(...)``
  returns the singleton itself — it is its own no-op context manager —
  so a run with tracing disabled allocates **no** span objects on the
  hot task path.
- **Spans survive exceptions.**  A ``with tracer.span(...)`` block that
  raises still records its span (tagged ``error=<ExcType>``), so failed
  epochs produce timelines too.
- **Workers ship spans home as plain dicts.**  :meth:`Tracer
  .export_payload` emits JSON/pickle-friendly dicts and
  :meth:`Tracer.merge_payload` folds them into another tracer — the
  mechanism task results and agent DATA/ERR frames use to deliver a
  cluster-wide timeline to the coordinator (see docs/observability.md).

Install scope: :func:`set_tracer` installs process-globally (what a
coordinator wants — routing threads, streamed generators and pool
threads all record into one tracer), while worker-side code uses the
*thread-local* slot so concurrent tasks inside one agent process cannot
clobber each other.  :func:`current_tracer` checks thread-local first.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "TRACE_ENV_VAR",
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "current_tracer",
    "set_tracer",
    "set_thread_tracer",
    "use_tracer",
    "trace_context",
    "task_tracer",
    "chrome_trace_events",
    "write_chrome_trace",
]

#: Environment variable naming a default trace output path — setting it
#: makes ``QueryJob.run`` record and ``JoinSession.close`` write the
#: file, exactly like ``RunConfig.trace_path`` / CLI ``--trace``.
TRACE_ENV_VAR = "REPRO_TRACE"

_HOSTNAME = socket.gethostname()


@dataclass
class Span:
    """One named wall-clock interval with its origin coordinates.

    ``ts`` is seconds since the Unix epoch (``time.time`` at entry);
    ``dur`` is measured with ``perf_counter`` so it never goes negative
    on clock steps.  ``args`` carries span-specific counters (bytes,
    task ids, worker numbers) straight into the Chrome trace ``args``
    box.
    """

    name: str
    cat: str = "repro"
    ts: float = 0.0
    dur: float = 0.0
    pid: int = 0
    tid: int = 0
    host: str = ""
    args: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON/pickle-friendly payload dict (the wire format)."""
        return {"name": self.name, "cat": self.cat, "ts": self.ts,
                "dur": self.dur, "pid": self.pid, "tid": self.tid,
                "host": self.host, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(name=str(payload.get("name", "?")),
                   cat=str(payload.get("cat", "repro")),
                   ts=float(payload.get("ts", 0.0)),
                   dur=float(payload.get("dur", 0.0)),
                   pid=int(payload.get("pid", 0)),
                   tid=int(payload.get("tid", 0)),
                   host=str(payload.get("host", "")),
                   args=dict(payload.get("args") or {}))


class Tracer:
    """Collects spans; thread-safe; exports Chrome trace-event JSON."""

    enabled = True

    def __init__(self, host: str | None = None,
                 query_id: str | None = None):
        self.host = host or _HOSTNAME
        #: Pid this tracer was created in.  task_tracer uses it to tell
        #: "same process, record directly" from "forked child holding a
        #: dead copy of the coordinator's tracer" (fork inherits the
        #: module global; spans recorded there would never ship home).
        self.pid = os.getpid()
        #: While set, every recorded span is stamped with
        #: ``args["query_id"]`` — the per-query attribution tag.
        #: ``QueryJob.run`` sets/restores it around each run, and
        #: :func:`trace_context` propagates it so pool children and
        #: remote agents stamp the spans they ship home too.
        self.query_id = query_id
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "repro", **args):
        """Time a ``with`` block into one span (exceptions still count)."""
        ts = time.time()
        start = time.perf_counter()
        try:
            yield self
        except BaseException as exc:
            args = dict(args, error=type(exc).__name__)
            raise
        finally:
            self.add_span(name, ts, time.perf_counter() - start,
                          cat=cat, **args)

    def add_span(self, name: str, ts: float, dur: float,
                 cat: str = "repro", pid: int | None = None,
                 tid: int | None = None, host: str | None = None,
                 **args) -> Span:
        """Append one pre-timed span (synthesized or replayed)."""
        if self.query_id is not None and "query_id" not in args:
            args["query_id"] = self.query_id
        span = Span(name=name, cat=cat, ts=float(ts),
                    dur=max(0.0, float(dur)),
                    pid=os.getpid() if pid is None else int(pid),
                    tid=(threading.get_ident() & 0x7FFFFFFF)
                    if tid is None else int(tid),
                    host=self.host if host is None else str(host),
                    args=args)
        with self._lock:
            self.spans.append(span)
        return span

    # -- merge / export ------------------------------------------------------

    def mark(self) -> int:
        """Current span count — pass to ``export_payload(since=...)``."""
        with self._lock:
            return len(self.spans)

    def merge_payload(self, payload, host: str | None = None) -> int:
        """Fold worker/agent span dicts in; returns how many merged.

        ``host`` fills only *missing* host tags (a worker that already
        stamped its hostname keeps it).
        """
        merged = []
        for item in payload or ():
            span = item if isinstance(item, Span) else Span.from_dict(item)
            if not span.host and host:
                span.host = host
            merged.append(span)
        if merged:
            with self._lock:
                self.spans.extend(merged)
        return len(merged)

    def export_payload(self, since: int = 0) -> list[dict]:
        """Span dicts recorded at/after index ``since`` (wire format)."""
        with self._lock:
            spans = self.spans[since:]
        return [s.as_dict() for s in spans]

    def chrome_trace(self) -> dict:
        """The full Chrome trace-event document (Perfetto-loadable)."""
        with self._lock:
            spans = list(self.spans)
        return {"traceEvents": chrome_trace_events(spans),
                "displayTimeUnit": "ms"}

    def write(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns span count."""
        doc = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer(host={self.host!r}, spans={len(self)})"


class NoopTracer:
    """The disabled tracer: a singleton that is its own context manager.

    ``NOOP_TRACER.span(...) is NOOP_TRACER`` — entering it allocates
    nothing, so hot paths may call ``current_tracer().span(...)``
    unconditionally.  Every mutating method is a no-op; every query
    reports emptiness.
    """

    enabled = False
    query_id = None
    __slots__ = ()

    # span() must swallow arbitrary positional/keyword args at zero cost.
    def span(self, *_args, **_kwargs) -> "NoopTracer":
        return self

    def __enter__(self) -> "NoopTracer":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add_span(self, *_args, **_kwargs) -> None:
        return None

    def mark(self) -> int:
        return 0

    def merge_payload(self, _payload, host: str | None = None) -> int:
        return 0

    def export_payload(self, since: int = 0) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NOOP_TRACER"


#: The process-wide disabled tracer (identity-comparable in tests).
NOOP_TRACER = NoopTracer()

_global_tracer: "Tracer | NoopTracer" = NOOP_TRACER
_tls = threading.local()


def current_tracer() -> "Tracer | NoopTracer":
    """The active tracer: thread-local first, then the process global."""
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        return tracer
    return _global_tracer


def set_tracer(tracer: "Tracer | NoopTracer | None"
               ) -> "Tracer | NoopTracer":
    """Install ``tracer`` process-globally; returns the previous one.

    ``None`` restores :data:`NOOP_TRACER`.  This is the coordinator-side
    install: routing threads, streamed generators and pool threads all
    see it.  Worker-side code (agents running concurrent tasks in one
    process) must use :func:`set_thread_tracer` instead.
    """
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NOOP_TRACER
    return previous


def set_thread_tracer(tracer: "Tracer | NoopTracer | None"
                      ) -> "Tracer | NoopTracer | None":
    """Install ``tracer`` for *this thread only*; returns the previous.

    Thread-local wins over the global in :func:`current_tracer`, so a
    worker thread can record into its own task tracer while the process
    global stays untouched (or NOOP).
    """
    previous = getattr(_tls, "tracer", None)
    _tls.tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: "Tracer | NoopTracer"):
    """Process-global install for a ``with`` block (coordinator-side)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def trace_context() -> dict | None:
    """The propagation context tasks carry to workers (None = off).

    Minted by the scheduler into ``WorkerTask.trace`` / ``BagTask
    .trace`` and by the remote executor into TASK frame meta.  Workers
    treat any truthy context as "record and ship spans back".
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return None
    ctx = {"enabled": True, "origin": tracer.host}
    if tracer.query_id is not None:
        ctx["query_id"] = tracer.query_id
    return ctx


def task_tracer(ctx) -> "Tracer | NoopTracer":
    """Worker-side tracer for a task's trace context.

    Returns :data:`NOOP_TRACER` when ``ctx`` is falsy — the no-tracing
    fast path — or when a recording tracer created *in this process* is
    already current (the serial/threads backends and ``local`` slots
    share the coordinator's process: recording into the current tracer
    directly avoids double-shipping spans through the task result).
    Any other worker builds a fresh local tracer to ship spans home —
    including a *forked* pool child, whose inherited copy of the
    coordinator's global tracer looks current but records into memory
    the coordinator will never see (hence the pid check).
    """
    if not ctx:
        return NOOP_TRACER
    current = current_tracer()
    if current.enabled and getattr(current, "pid", None) == os.getpid():
        return NOOP_TRACER
    return Tracer(query_id=ctx.get("query_id")
                  if isinstance(ctx, dict) else None)


def chrome_trace_events(spans) -> list[dict]:
    """Chrome trace-event dicts for ``spans``, sorted by timestamp.

    Each span becomes one complete event (``"ph": "X"``, microsecond
    ``ts``/``dur``); per-(host, pid) metadata events name the processes
    so Perfetto's track labels read ``host (pid)`` instead of bare
    numbers.  Events are sorted so ``ts`` is monotonically
    non-decreasing — the property CI validates.
    """
    events: list[dict] = []
    named: set[tuple[str, int]] = set()
    for span in sorted(spans, key=lambda s: s.ts):
        key = (span.host, span.pid)
        if key not in named:
            named.add(key)
            events.append({"ph": "M", "name": "process_name",
                           "pid": span.pid, "tid": 0,
                           "args": {"name": f"{span.host} "
                                            f"(pid {span.pid})"}})
        args = dict(span.args)
        if span.host:
            args.setdefault("host", span.host)
        events.append({"ph": "X", "name": span.name, "cat": span.cat,
                       "ts": span.ts * 1e6, "dur": span.dur * 1e6,
                       "pid": span.pid, "tid": span.tid, "args": args})
    return events


def write_chrome_trace(path: str, spans) -> int:
    """Write a Chrome trace file from raw spans; returns event count."""
    events = chrome_trace_events(spans)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return sum(1 for e in events if e.get("ph") == "X")
