"""repro.obs — tracing, metrics, and structured logging.

Three independent pieces with one job: make the distributed runtime's
behaviour *visible* without changing it.

- :mod:`repro.obs.tracing` — nestable spans with host/pid/tid tags,
  remote propagation through task payloads and agent frames, Chrome
  trace-event export (Perfetto / ``chrome://tracing``).
- :mod:`repro.obs.metrics` — process-wide named counters / gauges /
  histograms (reservoir quantiles, labeled :meth:`scope` windows)
  behind ``session.metrics()`` and the agent STAT opcode.
- :mod:`repro.obs.profile` — EXPLAIN ANALYZE: :class:`QueryProfile`
  assembled per run from the span/metrics streams above.
- :mod:`repro.obs.expo` — Prometheus-style text exposition for the
  agent EXPO opcode and ``repro serve --expo-port``.
- :mod:`repro.obs.log` — the ``repro.*`` logger hierarchy with a
  key=value formatter, configured via ``--log-level`` / ``REPRO_LOG``.

See docs/observability.md for the span model, metric names, and usage.
"""

from .expo import CONTENT_TYPE_TEXT, prometheus_text, \
    start_http_exposition
from .log import (LOG_ENV_VAR, KeyValueFormatter, configure_logging,
                  get_logger, kv)
from .metrics import (METRICS, Counter, Gauge, Histogram,
                      MetricsRegistry, MetricsScope, snapshot_delta)
from .profile import PROFILE_SCHEMA_VERSION, PhaseRow, QueryProfile, \
    build_profile
from .tracing import (NOOP_TRACER, TRACE_ENV_VAR, NoopTracer, Span,
                      Tracer, chrome_trace_events, current_tracer,
                      set_thread_tracer, set_tracer, task_tracer,
                      trace_context, use_tracer, write_chrome_trace)

__all__ = [
    # tracing
    "TRACE_ENV_VAR", "Span", "Tracer", "NoopTracer", "NOOP_TRACER",
    "current_tracer", "set_tracer", "set_thread_tracer", "use_tracer",
    "trace_context", "task_tracer", "chrome_trace_events",
    "write_chrome_trace",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsScope",
    "snapshot_delta", "METRICS",
    # profiling
    "QueryProfile", "PhaseRow", "build_profile",
    "PROFILE_SCHEMA_VERSION",
    # exposition
    "prometheus_text", "start_http_exposition", "CONTENT_TYPE_TEXT",
    # logging
    "LOG_ENV_VAR", "get_logger", "kv", "configure_logging",
    "KeyValueFormatter",
]
