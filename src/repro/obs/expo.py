"""Prometheus-style text exposition of the metrics registry.

Turns :class:`~repro.obs.metrics.MetricsRegistry` instruments into the
Prometheus text format (version 0.0.4): counters become ``*_total``
series, gauges stay bare, histograms render as summaries with
``quantile`` labels plus ``_sum``/``_count``.  Dynamic name suffixes
the stack mints at runtime (``net.heartbeat_rtt_seconds.<host>``,
``kernel.selected.<key>``) fold into labels so the series set stays
bounded.

Two transports serve it:

- the worker agent's EXPO opcode (``repro.net.agent``) — frame-native,
  what ``repro top`` polls;
- :func:`start_http_exposition` — a stdlib HTTP listener for an actual
  Prometheus scrape (``repro serve --expo-port``), answering
  ``GET /metrics``.

See docs/observability.md ("Continuous export").
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .log import get_logger, kv
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prometheus_text", "start_http_exposition",
           "CONTENT_TYPE_TEXT"]

log = get_logger("repro.obs.expo")

#: The exposition content type Prometheus scrapers expect.
CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"

#: Registry-name prefixes whose dynamic suffix becomes a label value
#: instead of part of the metric name (keeps the series set bounded).
_LABELED_PREFIXES: tuple[tuple[str, str, str], ...] = (
    ("net.heartbeat_rtt_seconds.", "net_heartbeat_rtt_seconds", "host"),
    ("kernel.selected.", "kernel_selected", "kernel"),
)

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _series(name: str) -> tuple[str, str]:
    """``(metric_name, label_block)`` for one registry name."""
    for prefix, metric, label in _LABELED_PREFIXES:
        if name.startswith(prefix) and len(name) > len(prefix):
            value = name[len(prefix):].replace("\\", "\\\\") \
                .replace('"', '\\"')
            return f"repro_{metric}", f'{{{label}="{value}"}}'
    return "repro_" + _INVALID.sub("_", name), ""


def _fmt(value: float) -> str:
    return repr(int(value)) if value == int(value) else repr(value)


def prometheus_text(registry: MetricsRegistry = METRICS,
                    extra: dict | None = None) -> str:
    """The registry rendered as Prometheus text exposition.

    ``extra`` adds caller-owned gauges (the agent's slots / busy-slot
    counts) as ``repro_<key>`` series.  Counter values are monotonic
    within one process lifetime — the property CI's exposition check
    asserts across two scrapes.
    """
    typed: dict[str, str] = {}
    samples: list[str] = []
    for name, inst in registry.instruments():
        metric, labels = _series(name)
        if isinstance(inst, Counter):
            metric += "_total"
            typed.setdefault(metric, "counter")
            samples.append(f"{metric}{labels} {_fmt(inst.snapshot())}")
        elif isinstance(inst, Gauge):
            typed.setdefault(metric, "gauge")
            samples.append(f"{metric}{labels} {_fmt(inst.snapshot())}")
        elif isinstance(inst, Histogram):
            typed.setdefault(metric, "summary")
            summary = inst.snapshot()
            for key, q in (("p50", "0.5"), ("p95", "0.95"),
                           ("p99", "0.99")):
                samples.append(f'{metric}{{quantile="{q}"}} '
                               f"{_fmt(summary[key])}")
            samples.append(f"{metric}_sum {_fmt(summary['sum'])}")
            samples.append(f"{metric}_count {summary['count']}")
    for key, value in sorted((extra or {}).items()):
        metric = "repro_" + _INVALID.sub("_", str(key))
        typed.setdefault(metric, "gauge")
        samples.append(f"{metric} {_fmt(float(value))}")

    lines: list[str] = []
    emitted: set[str] = set()
    for sample in samples:
        metric = sample.split("{", 1)[0].split(" ", 1)[0]
        base = metric[:-6] if metric.endswith("_total") else metric
        for candidate in (metric, base):
            if candidate in typed and candidate not in emitted:
                emitted.add(candidate)
                lines.append(f"# TYPE {candidate} {typed[candidate]}")
        lines.append(sample)
    return "\n".join(lines) + "\n"


class _ExpoHandler(BaseHTTPRequestHandler):
    """Answers ``GET /metrics`` (and ``/``) with the exposition text."""

    # Set per-server via the factory in start_http_exposition.
    collect = staticmethod(lambda: "")

    def do_GET(self):   # noqa: N802 — BaseHTTPRequestHandler contract
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = type(self).collect().encode()
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE_TEXT)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        log.debug("expo scrape %s", kv(path=self.path,
                                       client=self.client_address[0]))


def start_http_exposition(host: str, port: int, collect
                          ) -> ThreadingHTTPServer:
    """Serve ``collect()`` (an exposition-text thunk) over HTTP.

    Binds immediately, serves on a daemon thread; call ``shutdown()``
    then ``server_close()`` to stop (the agent's ``stop()`` does).
    """
    handler = type("ExpoHandler", (_ExpoHandler,),
                   {"collect": staticmethod(collect)})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever,
                              name=f"repro-expo-{port}", daemon=True)
    thread.start()
    log.info("exposition listening %s",
             kv(host=host, port=server.server_address[1]))
    return server
