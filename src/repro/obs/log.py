"""Structured logging for the ``repro.*`` logger hierarchy.

Every module logs through :func:`get_logger` (``repro.net.agent``,
``repro.runtime.scheduler``, ...), so one root configuration governs the
whole stack.  :func:`configure_logging` installs a key=value formatter
on the ``repro`` root logger:

    ts=2026-08-07T12:00:01.123 level=INFO logger=repro.net.agent \
        msg="task done" slot=2 worker=5

Severity resolves flag > ``REPRO_LOG`` env > WARNING, mirroring the
RunConfig precedence rule.  Messages stay human strings; structured
fields ride as ``key=value`` pairs via :func:`kv` (values with spaces
are quoted).  The library never configures logging on import — only the
CLI and ``JoinSession`` call :func:`configure_logging`, so embedding
applications keep control of their own handlers.
"""

from __future__ import annotations

import logging
import os
import time

from ..errors import ConfigError

__all__ = ["LOG_ENV_VAR", "get_logger", "kv", "configure_logging",
           "resolve_level", "KeyValueFormatter"]

#: Environment variable naming the default log level (e.g. ``debug``).
LOG_ENV_VAR = "REPRO_LOG"

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent, cheap)."""
    if name != _ROOT and not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def kv(**fields) -> str:
    """Render fields as ``key=value`` pairs for a log message tail."""
    parts = []
    for key, value in fields.items():
        text = str(value)
        if " " in text or '"' in text:
            text = '"' + text.replace('"', r'\"') + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg=...`` — one line per record."""

    def format(self, record: logging.LogRecord) -> str:
        msg = record.getMessage()
        if " " in msg or '"' in msg:
            msg = '"' + msg.replace('"', r'\"') + '"'
        ts = time.strftime("%Y-%m-%dT%H:%M:%S",
                           time.localtime(record.created))
        line = (f"ts={ts}.{int(record.msecs):03d} "
                f"level={record.levelname} logger={record.name} "
                f"msg={msg}")
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def resolve_level(level: str | int | None) -> int:
    """Flag > ``REPRO_LOG`` env > WARNING, as a logging level int."""
    if level is None:
        level = os.environ.get(LOG_ENV_VAR) or "warning"
    if isinstance(level, int):
        return level
    parsed = logging.getLevelName(str(level).strip().upper())
    if not isinstance(parsed, int):
        raise ConfigError(f"unknown log level: {level!r}")
    return parsed


def configure_logging(level: str | int | None = None) -> logging.Logger:
    """Install the key=value handler on the ``repro`` root logger.

    Idempotent: reconfiguring just updates the level of the handler it
    installed earlier.  Returns the root ``repro`` logger.
    """
    root = logging.getLogger(_ROOT)
    root.setLevel(resolve_level(level))
    for handler in root.handlers:
        if getattr(handler, "_repro_obs", False):
            return root
    handler = logging.StreamHandler()
    handler.setFormatter(KeyValueFormatter())
    handler._repro_obs = True
    root.addHandler(handler)
    root.propagate = False
    return root
