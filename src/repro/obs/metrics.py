"""Process-wide named metrics: counters, gauges, histograms.

One flat registry (:data:`METRICS`) unifies the numbers the runtime
already measures but keeps in per-object silos — ``TransportStats``
epoch counters, ``EngineResult.data_plane``, per-task durations, budget
consumption, heartbeat RTTs — behind get-or-create named instruments:

- :class:`Counter` — monotonically increasing totals
  (``transport.published_bytes``, ``runtime.tasks_completed``).
- :class:`Gauge` — last-written values (``net.heartbeat_rtt_seconds.*``).
- :class:`Histogram` — count/sum/min/max plus p50/p95/p99 quantiles
  from a bounded reservoir (``runtime.task_seconds``).

``JoinSession.metrics()`` surfaces :meth:`MetricsRegistry.snapshot`;
the agent protocol's STAT/EXPO opcodes serve a remote host's snapshot
(see ``repro.net.agent``).  Metrics are cumulative across epochs and
sessions in one process; for per-run numbers use a **labeled window**
(:meth:`MetricsRegistry.scope` — what ``QueryJob.run(profile=True)``
does per query) or diff two snapshots with :func:`snapshot_delta`
(``session.metrics(delta_from=...)``) — manual ``reset()`` between runs
is no longer the supported pattern outside test fixtures.  Names are
dotted lowercase, documented in docs/observability.md.
"""

from __future__ import annotations

import random
import threading
import zlib

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricsScope", "snapshot_delta", "METRICS"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock", "_sinks")

    def __init__(self, name: str, sinks=()):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()
        #: Shared, registry-owned list of active :class:`MetricsScope`
        #: windows; empty on the hot path (one truthiness check).
        self._sinks = sinks

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            # repro: lint-ignore[error-taxonomy] caller misuse of the Counter contract, not a stack rejection; stdlib ValueError is the idiom
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount
        for sink in self._sinks:
            sink._observe_counter(self.name, amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        value = self.value
        return int(value) if value == int(value) else value


class Gauge:
    """A last-written value (set wins; inc/dec for running levels)."""

    __slots__ = ("name", "_value", "_lock", "_sinks")

    def __init__(self, name: str, sinks=()):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()
        self._sinks = sinks

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
        for sink in self._sinks:
            sink._observe_gauge(self.name, float(value))

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            value = self._value
        for sink in self._sinks:
            sink._observe_gauge(self.name, value)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


#: Samples each histogram retains for quantile estimation.  Algorithm R
#: keeps a uniform sample of everything observed, so p50/p95/p99 stay
#: meaningful at any count while memory stays O(1) — the property that
#: lets the scheduler observe every task duration of a million-task run.
RESERVOIR_SIZE = 512


class Histogram:
    """Count/sum/min/max plus reservoir quantiles of observed samples.

    The summary fields are exact; the p50/p95/p99 quantiles come from a
    bounded uniform reservoir (:data:`RESERVOIR_SIZE` samples, Vitter's
    Algorithm R seeded deterministically per name so test runs are
    reproducible).  ``snapshot()`` keeps the historical
    ``count/sum/min/max/mean`` keys — existing ``runtime.task_seconds``
    consumers are unaffected — and *adds* ``p50/p95/p99``.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_lock",
                 "_samples", "_rng", "_sinks")

    def __init__(self, name: str, sinks=()):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._sinks = sinks

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < RESERVOIR_SIZE:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < RESERVOIR_SIZE:
                    self._samples[slot] = value
        for sink in self._sinks:
            sink._observe_histogram(self.name, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) estimated from the reservoir."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        index = min(len(samples) - 1,
                    max(0, int(round(q * (len(samples) - 1)))))
        return samples[index]

    def snapshot(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0,
                        "max": 0.0, "mean": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            summary = {"count": self._count, "sum": self._sum,
                       "min": self._min, "max": self._max,
                       "mean": self._sum / self._count}
            samples = sorted(self._samples)
        if not samples:
            # A histogram folded in via merge_snapshot carries counts
            # but no reservoir; report the mean as the degenerate
            # quantile rather than inventing a distribution.
            mean = summary["mean"]
            summary.update(p50=mean, p95=mean, p99=mean)
            return summary
        last = len(samples) - 1
        for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            summary[key] = samples[min(last, max(0, int(round(q * last))))]
        return summary


class MetricsScope:
    """A labeled window over a registry: per-query/per-phase attribution.

    While active (``with registry.scope("q0001:Q9") as window:``) every
    counter increment, gauge write and histogram observation on the
    parent registry is *also* recorded into the scope's private
    registry — so ``window.snapshot()`` is an exact delta for the
    window, including real windowed quantiles (the scope's histograms
    run their own reservoirs).  Scopes nest and overlap freely; each
    sees only what happened while it was entered.  This is what
    ``QueryJob.run(profile=True)`` uses to attribute process-cumulative
    totals to one ``query_id`` without resetting anything.
    """

    def __init__(self, parent: "MetricsRegistry", label: str):
        self.label = label
        self._parent = parent
        self._registry = MetricsRegistry()
        self._active = False

    # -- sink protocol (called by the parent's instruments) ------------------

    def _observe_counter(self, name: str, amount: float) -> None:
        self._registry.counter(name).inc(amount)

    def _observe_gauge(self, name: str, value: float) -> None:
        self._registry.gauge(name).set(value)

    def _observe_histogram(self, name: str, value: float) -> None:
        self._registry.histogram(name).observe(value)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "MetricsScope":
        self._parent._attach(self)
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._active:
            self._active = False
            self._parent._detach(self)

    def snapshot(self) -> dict:
        """The window's ``{name: value-or-summary}`` delta (sorted)."""
        return self._registry.snapshot()

    def __repr__(self) -> str:
        state = "active" if self._active else "closed"
        return f"MetricsScope({self.label!r}, {state})"


class MetricsRegistry:
    """Get-or-create instruments by name; one flat namespace.

    Re-requesting a name returns the same instrument; requesting it as a
    different kind raises — names are a contract, not a suggestion.
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()
        #: Active labeled windows.  Every instrument holds a reference
        #: to this *same list object*, so attaching a scope makes all
        #: existing and future instruments mirror into it.
        self._scopes: list[MetricsScope] = []

    def _get(self, name: str, kind: type):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = kind(name, self._scopes)
                self._instruments[name] = inst
            elif type(inst) is not kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {kind.__name__}")
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def scope(self, label: str) -> MetricsScope:
        """A labeled window (enter it to start mirroring; see
        :class:`MetricsScope`)."""
        return MetricsScope(self, label)

    def _attach(self, scope: MetricsScope) -> None:
        with self._lock:
            if scope not in self._scopes:
                self._scopes.append(scope)

    def _detach(self, scope: MetricsScope) -> None:
        with self._lock:
            if scope in self._scopes:
                self._scopes.remove(scope)

    def snapshot(self) -> dict:
        """A plain ``{name: value-or-summary-dict}`` mapping (sorted)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in instruments}

    def instruments(self) -> list[tuple[str, object]]:
        """Sorted ``(name, instrument)`` pairs — the typed view the
        Prometheus exposition (:mod:`repro.obs.expo`) renders from."""
        with self._lock:
            return sorted(self._instruments.items())

    def reset(self) -> None:
        """Drop every instrument (test-fixture hygiene only — runtime
        callers wanting per-run numbers should use :meth:`scope` or
        :func:`snapshot_delta` instead)."""
        with self._lock:
            self._instruments.clear()

    def merge_snapshot(self, snapshot: dict, prefix: str = "") -> None:
        """Fold a remote host's snapshot in under ``prefix``.

        Counter-like numbers accumulate; histogram summaries merge
        count/sum/min/max (quantiles are not mergeable across hosts —
        the folded histogram reports its own reservoir only).  Used when
        polling ``repro serve`` hosts.
        """
        for name, value in (snapshot or {}).items():
            full = f"{prefix}{name}"
            if isinstance(value, dict):
                hist = self.histogram(full)
                with hist._lock:
                    count = int(value.get("count", 0))
                    if count:
                        hist._count += count
                        hist._sum += float(value.get("sum", 0.0))
                        hist._min = min(hist._min, float(value["min"]))
                        hist._max = max(hist._max, float(value["max"]))
            else:
                self.counter(full).inc(float(value))


def snapshot_delta(before: dict, after: dict) -> dict:
    """What changed between two :meth:`MetricsRegistry.snapshot` calls.

    Scalar instruments (counters, gauges) become numeric differences;
    histogram summaries become ``{count, sum, mean}`` of the window
    (min/max and quantiles are not differencable post-hoc — use
    :meth:`MetricsRegistry.scope` when windowed quantiles matter).
    Instruments that did not change are omitted, so an empty dict means
    "nothing happened in between".
    """
    delta: dict = {}
    for name, value in after.items():
        prev = before.get(name)
        if isinstance(value, dict):
            prev = prev if isinstance(prev, dict) else {}
            dcount = int(value.get("count", 0)) - int(prev.get("count", 0))
            if dcount:
                dsum = (float(value.get("sum", 0.0))
                        - float(prev.get("sum", 0.0)))
                delta[name] = {"count": dcount, "sum": dsum,
                               "mean": dsum / dcount}
        else:
            base = prev if isinstance(prev, (int, float)) else 0
            diff = value - base
            if diff:
                delta[name] = diff
    return delta


#: The process-wide registry every subsystem records into.
METRICS = MetricsRegistry()
