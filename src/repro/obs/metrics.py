"""Process-wide named metrics: counters, gauges, histograms.

One flat registry (:data:`METRICS`) unifies the numbers the runtime
already measures but keeps in per-object silos — ``TransportStats``
epoch counters, ``EngineResult.data_plane``, per-task durations, budget
consumption, heartbeat RTTs — behind get-or-create named instruments:

- :class:`Counter` — monotonically increasing totals
  (``transport.published_bytes``, ``runtime.tasks_completed``).
- :class:`Gauge` — last-written values (``net.heartbeat_rtt_seconds.*``).
- :class:`Histogram` — count/sum/min/max summaries
  (``runtime.task_seconds``).

``JoinSession.metrics()`` surfaces :meth:`MetricsRegistry.snapshot`;
the agent protocol's STAT opcode serves a remote host's snapshot (see
``repro.net.agent``).  Metrics are cumulative across epochs and
sessions in one process — callers comparing against per-run numbers
(e.g. ``data_plane``) should :meth:`~MetricsRegistry.reset` or delta
two snapshots.  Names are dotted lowercase, documented in
docs/observability.md.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            # repro: lint-ignore[error-taxonomy] caller misuse of the Counter contract, not a stack rejection; stdlib ValueError is the idiom
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        value = self.value
        return int(value) if value == int(value) else value


class Gauge:
    """A last-written value (set wins; inc/dec for running levels)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A count/sum/min/max summary of observed samples.

    Keeps no per-sample storage — O(1) memory regardless of task count,
    which is the property that lets the scheduler observe every task
    duration of a million-task run.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0,
                        "max": 0.0, "mean": 0.0}
            return {"count": self._count, "sum": self._sum,
                    "min": self._min, "max": self._max,
                    "mean": self._sum / self._count}


class MetricsRegistry:
    """Get-or-create instruments by name; one flat namespace.

    Re-requesting a name returns the same instrument; requesting it as a
    different kind raises — names are a contract, not a suggestion.
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = kind(name)
                self._instruments[name] = inst
            elif type(inst) is not kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {kind.__name__}")
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """A plain ``{name: value-or-summary-dict}`` mapping (sorted)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in instruments}

    def reset(self) -> None:
        """Drop every instrument (tests and per-run comparisons)."""
        with self._lock:
            self._instruments.clear()

    def merge_snapshot(self, snapshot: dict, prefix: str = "") -> None:
        """Fold a remote host's snapshot in under ``prefix``.

        Counter-like numbers accumulate; histogram summaries merge
        count/sum/min/max.  Used when polling ``repro serve`` hosts.
        """
        for name, value in (snapshot or {}).items():
            full = f"{prefix}{name}"
            if isinstance(value, dict):
                hist = self.histogram(full)
                with hist._lock:
                    count = int(value.get("count", 0))
                    if count:
                        hist._count += count
                        hist._sum += float(value.get("sum", 0.0))
                        hist._min = min(hist._min, float(value["min"]))
                        hist._max = max(hist._max, float(value["max"]))
            else:
                self.counter(full).inc(float(value))


#: The process-wide registry every subsystem records into.
METRICS = MetricsRegistry()
