"""EXPLAIN ANALYZE: one structured profile per executed query.

A :class:`QueryProfile` is assembled *after* a run from streams the
stack already produces — the modeled :class:`CostBreakdown`, the
measured :class:`RuntimeTelemetry`, the run's span slice, the
data-plane counters and the query's :class:`MetricsScope` window — so
profiling adds **no** instrumentation points to the engines; it only
reads what tracing/metrics already recorded (docs/observability.md).

``QueryJob.run(profile=True)`` / ``repro run --profile`` build one and
attach it as ``result.extra["profile"]``; ``repro profile`` renders it.
The report reconciles by construction:

- ``measured`` phase seconds are exactly ``telemetry.phase_seconds``
  (their sum equals ``RuntimeTelemetry.total``);
- ``data_plane`` is the same dict as ``EngineResult.data_plane``;
- per-atom bytes aggregate the transport's publish spans (logical
  bytes staged per relation — the pickle transport *ships* those bytes
  inside task payloads instead of publishing them, so compare against
  ``published_bytes`` or ``shipped_bytes`` per the transport).

Rendering: :meth:`QueryProfile.render` (a tree for terminals) and
:meth:`QueryProfile.as_dict` (the JSON schema CI validates;
``version`` gates future shape changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseRow", "QueryProfile", "build_profile",
           "PROFILE_SCHEMA_VERSION"]

#: Bumped whenever :meth:`QueryProfile.as_dict` changes shape.
PROFILE_SCHEMA_VERSION = 1

#: Modeled cost phase -> the measured telemetry phases it corresponds
#: to.  ``communication`` is the shuffle/route + publish wall;
#: ``computation`` is task execution (plus engine-specific phases such
#: as sparksql's ``partition``); ``optimization``/``precompute`` happen
#: on the coordinator before the runtime path starts and have no
#: telemetry counterpart.
_PHASE_MAP: dict[str, tuple[str, ...]] = {
    "optimization": (),
    "precompute": (),
    "communication": ("shuffle", "publish"),
    "computation": ("local_join", "partition"),
}


@dataclass(frozen=True)
class PhaseRow:
    """One modeled-vs-measured line of the profile tree."""

    name: str
    modeled: float
    #: Measured wall-clock seconds; None when the run never touched the
    #: runtime path (pure-serial, no transport) or the phase has no
    #: measured counterpart (optimization/precompute).
    measured: float | None = None
    #: The telemetry phases folded into ``measured`` (e.g. shuffle +
    #: publish for communication), for the tree rendering.
    parts: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "modeled": self.modeled,
                "measured": self.measured, "parts": dict(self.parts)}


@dataclass
class QueryProfile:
    """The EXPLAIN ANALYZE report for one executed query."""

    query_id: str
    query: str
    engine: str
    count: int
    ok: bool
    failure: str | None
    backend: str
    transport: str | None
    kernel: str | None
    kernel_reason: str | None
    #: Modeled cost phases side by side with measured wall-clock.
    phases: list[PhaseRow] = field(default_factory=list)
    modeled_total: float = 0.0
    measured_total: float | None = None
    overlap_seconds: float | None = None
    #: Coordinator-visible wall seconds summed per span name
    #: (route/publish/worker_task/merge/teardown/...).
    span_wall: dict[str, float] = field(default_factory=dict)
    span_count: int = 0
    #: Per-worker task seconds, straggler and skew attribution.
    worker_seconds: dict[str, float] = field(default_factory=dict)
    tasks_executed: int = 0
    straggler_worker: str | None = None
    straggler_seconds: float | None = None
    #: max(worker) / mean(worker): 1.0 = perfectly balanced.
    skew_ratio: float | None = None
    #: The run's :attr:`EngineResult.data_plane` dict, verbatim.
    data_plane: dict | None = None
    #: Published bytes attributed to each atom relation (from the
    #: transport's publish spans).
    atom_bytes: dict[str, int] = field(default_factory=dict)
    #: Per-bag kernel decisions ``[{bag, kernel, reason}]`` when the
    #: engine recorded them (yannakakis/adj), annotated with realized
    #: intermediate sizes when available.
    kernel_decisions: list[dict] = field(default_factory=list)
    #: Realized intermediate sizes: tuples per traversal level
    #: (estimated counterpart rides in ``estimated_cost``).
    level_tuples: list[int] = field(default_factory=list)
    estimated_cost: float | None = None
    #: The query's scoped metrics window (exact per-query deltas,
    #: including windowed task-latency quantiles).
    metrics: dict = field(default_factory=dict)

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "version": PROFILE_SCHEMA_VERSION,
            "query_id": self.query_id,
            "query": self.query,
            "engine": self.engine,
            "count": self.count,
            "ok": self.ok,
            "failure": self.failure,
            "backend": self.backend,
            "transport": self.transport,
            "kernel": self.kernel,
            "kernel_reason": self.kernel_reason,
            "phases": [row.as_dict() for row in self.phases],
            "modeled_total": self.modeled_total,
            "measured_total": self.measured_total,
            "overlap_seconds": self.overlap_seconds,
            "span_wall": dict(self.span_wall),
            "span_count": self.span_count,
            "worker_seconds": dict(self.worker_seconds),
            "tasks_executed": self.tasks_executed,
            "straggler_worker": self.straggler_worker,
            "straggler_seconds": self.straggler_seconds,
            "skew_ratio": self.skew_ratio,
            "data_plane": dict(self.data_plane) if self.data_plane
            else None,
            "atom_bytes": dict(self.atom_bytes),
            "kernel_decisions": [dict(d) for d in self.kernel_decisions],
            "level_tuples": list(self.level_tuples),
            "estimated_cost": self.estimated_cost,
            "metrics": self.metrics,
        }

    def render(self) -> str:
        """The terminal tree: modeled vs measured, workers, data plane."""

        def secs(value: float | None) -> str:
            return f"{value:.4f}s" if value is not None else "-"

        status = "ok" if self.ok else f"FAILED ({self.failure})"
        head = (f"profile {self.query_id} engine={self.engine} "
                f"count={self.count:,} backend={self.backend} "
                f"transport={self.transport or 'inline'} "
                f"kernel={self.kernel or '-'} [{status}]")
        lines = [head, "├─ phases (modeled model-s vs measured wall-s)"]
        for row in self.phases:
            parts = ""
            if row.parts:
                parts = "  (" + ", ".join(
                    f"{k}={v:.4f}s" for k, v in sorted(row.parts.items())
                ) + ")"
            lines.append(f"│   {row.name:<13} modeled={row.modeled:.4f} "
                         f"measured={secs(row.measured)}{parts}")
        overlap = (f"  overlap={secs(self.overlap_seconds)}"
                   if self.overlap_seconds else "")
        lines.append(f"│   {'total':<13} modeled="
                     f"{self.modeled_total:.4f} "
                     f"measured={secs(self.measured_total)}{overlap}")
        if self.span_wall:
            walls = "  ".join(f"{name}={dur:.4f}s" for name, dur in
                              sorted(self.span_wall.items(),
                                     key=lambda kv: -kv[1]))
            lines.append(f"├─ span wall ({self.span_count} spans)")
            lines.append(f"│   {walls}")
        if self.worker_seconds:
            lines.append(
                f"├─ workers (n={len(self.worker_seconds)}, "
                f"tasks={self.tasks_executed}, "
                f"straggler={self.straggler_worker} "
                f"{secs(self.straggler_seconds)}, "
                f"skew={self.skew_ratio:.2f}x)")
            peak = max(self.worker_seconds.values()) or 1.0
            for worker, seconds in sorted(self.worker_seconds.items()):
                bar = "▇" * max(1, int(round(8 * seconds / peak)))
                lines.append(f"│   w{worker:<4} {bar:<8} {seconds:.4f}s")
        if self.data_plane:
            plane = self.data_plane
            lines.append(
                f"├─ data plane ({plane.get('transport', '?')}): "
                f"published={plane.get('published_bytes', 0):,}B "
                f"shipped={plane.get('shipped_bytes', 0):,}B "
                f"fetched={plane.get('fetched_bytes', 0):,}B")
            if self.atom_bytes:
                atoms = "  ".join(f"{name}={size:,}B" for name, size in
                                  sorted(self.atom_bytes.items()))
                lines.append(f"│   per atom: {atoms}")
        if self.kernel_decisions:
            lines.append("├─ kernel decisions")
            for dec in self.kernel_decisions:
                realized = (f"  realized={dec['realized_tuples']:,}t"
                            if "realized_tuples" in dec else "")
                lines.append(f"│   v{dec['bag']}: {dec['kernel']} "
                             f"({dec['reason']}){realized}")
        elif self.kernel_reason:
            lines.append(f"├─ kernel: {self.kernel} "
                         f"({self.kernel_reason})")
        if self.level_tuples:
            sizes = " -> ".join(f"{n:,}" for n in self.level_tuples)
            est = (f"  (modeled cost {self.estimated_cost:.4f})"
                   if self.estimated_cost is not None else "")
            lines.append(f"├─ intermediates: {sizes} tuples{est}")
        window = self.metrics
        if window:
            task_hist = window.get("runtime.task_seconds")
            summary = []
            if isinstance(task_hist, dict) and task_hist.get("count"):
                summary.append(f"tasks={task_hist['count']} "
                               f"task_p95={task_hist['p95']:.4f}s")
            for name in ("transport.published_bytes",
                         "transport.fetched_bytes",
                         "runtime.intersection_work"):
                if name in window:
                    summary.append(f"{name}={window[name]:,}")
            lines.append("└─ metrics window: "
                         + ("  ".join(summary) if summary
                            else f"{len(window)} instruments"))
        else:
            lines.append("└─ metrics window: empty")
        return "\n".join(lines)


def _atom_bytes(spans) -> dict[str, int]:
    """Published bytes per atom relation, from publish-span args."""
    totals: dict[str, int] = {}
    for span in spans:
        if span.name != "publish":
            continue
        key = span.args.get("key")
        size = span.args.get("bytes")
        if not key or size is None:
            continue
        name = str(key).split("#", 1)[0]
        if name.startswith("rel:"):
            name = name[4:]
        totals[name] = totals.get(name, 0) + int(size)
    return totals


def build_profile(result, *, query_id: str, backend: str,
                  transport_label: str | None, spans=(),
                  metrics_window: dict | None = None) -> QueryProfile:
    """Assemble the profile for one finished :class:`EngineResult`.

    ``spans`` is the run's slice of the tracer (coordinator + shipped
    worker/agent spans); ``metrics_window`` the query's
    :class:`~repro.obs.metrics.MetricsScope` snapshot.  Works on failed
    results too — a crashed run still profiles whatever phases ran.
    """
    spans = list(spans)
    breakdown = result.breakdown
    telemetry = result.telemetry
    measured_phases = dict(telemetry.phase_seconds) if telemetry else {}
    rows: list[PhaseRow] = []
    mapped: set[str] = set()
    for name in ("optimization", "precompute", "communication",
                 "computation"):
        modeled = getattr(breakdown, name, 0.0)
        parts = {phase: measured_phases[phase]
                 for phase in _PHASE_MAP[name]
                 if phase in measured_phases}
        mapped.update(parts)
        measured = sum(parts.values()) if parts else None
        rows.append(PhaseRow(name=name, modeled=modeled,
                             measured=measured, parts=parts))
    # Telemetry phases outside the model's vocabulary still reconcile:
    # they appear as modeled=0 rows so the measured column sums to
    # RuntimeTelemetry.total exactly.
    for phase in sorted(set(measured_phases) - mapped):
        rows.append(PhaseRow(name=phase, modeled=0.0,
                             measured=measured_phases[phase],
                             parts={phase: measured_phases[phase]}))

    span_wall: dict[str, float] = {}
    for span in spans:
        span_wall[span.name] = span_wall.get(span.name, 0.0) + span.dur

    worker_seconds = ({str(w): s
                       for w, s in telemetry.worker_seconds.items()}
                      if telemetry else {})
    straggler_worker = straggler = skew = None
    if worker_seconds:
        straggler_worker = max(worker_seconds, key=worker_seconds.get)
        straggler = worker_seconds[straggler_worker]
        mean = sum(worker_seconds.values()) / len(worker_seconds)
        skew = straggler / mean if mean else 1.0

    extra = result.extra
    decisions = []
    for bag, (key, reason) in sorted(
            (extra.get("kernel_decisions") or {}).items()):
        decisions.append({"bag": bag, "kernel": key, "reason": reason})
    level_tuples = [int(n) for n in (extra.get("level_tuples") or ())]
    if decisions and level_tuples and len(decisions) == len(level_tuples):
        # Bag-per-level engines (yannakakis): annotate each decision
        # with the realized intermediate size of its level.
        for dec, realized in zip(decisions, level_tuples):
            dec["realized_tuples"] = realized

    return QueryProfile(
        query_id=query_id,
        query=result.query,
        engine=result.engine,
        count=result.count,
        ok=result.ok,
        failure=result.failure,
        backend=backend,
        transport=transport_label,
        kernel=extra.get("kernel"),
        kernel_reason=extra.get("kernel_reason"),
        phases=rows,
        modeled_total=breakdown.total,
        measured_total=telemetry.total if telemetry else None,
        overlap_seconds=telemetry.overlap_seconds if telemetry else None,
        span_wall=span_wall,
        span_count=len(spans),
        worker_seconds=worker_seconds,
        tasks_executed=telemetry.tasks_executed if telemetry else 0,
        straggler_worker=straggler_worker,
        straggler_seconds=straggler,
        skew_ratio=skew,
        data_plane=result.data_plane,
        atom_bytes=_atom_bytes(spans),
        kernel_decisions=decisions,
        level_tuples=level_tuples,
        estimated_cost=extra.get("estimated_cost"),
        metrics=dict(metrics_window or {}),
    )
