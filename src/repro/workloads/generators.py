"""Test-case construction following Sec. VII-A.

"For each test-case that consists of a database and a query, the database
is constructed by allocating each relation of the query with a copy of
the graph."  All copies share one numpy edge array, so a test-case costs
one graph generation regardless of the query's atom count.
"""

from __future__ import annotations

from ..data.database import Database
from ..errors import ConfigError
from ..data.datasets import load_dataset
from ..data.relation import Relation
from ..query.catalog import paper_query
from ..query.query import JoinQuery

__all__ = ["graph_database_for", "make_testcase"]


def graph_database_for(query: JoinQuery, edges, attributes=("src", "dst")
                       ) -> Database:
    """One binary relation per atom, all sharing the same edge array."""
    base = Relation("base", attributes, edges, dedup=True)
    db = Database()
    for atom in query.atoms:
        if atom.arity != 2:
            raise ConfigError(
                f"graph test-cases need binary atoms, got {atom}")
        if atom.relation in db:
            continue  # two atoms may deliberately share a relation
        db.add(Relation(atom.relation, attributes, base.data, dedup=False))
    return db


def make_testcase(dataset: str, query_name: str, scale: float | None = None,
                  seed: int | None = None) -> tuple[JoinQuery, Database]:
    """(query, database) for a paper test-case like ('lj', 'Q5')."""
    query = paper_query(query_name)
    edges = load_dataset(dataset, scale=scale, seed=seed)
    return query, graph_database_for(query, edges)
