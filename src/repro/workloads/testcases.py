"""Named test-case registry and default engine line-ups for the benches."""

from __future__ import annotations

from dataclasses import dataclass

from ..data.datasets import dataset_names
from ..distributed.cluster import Cluster
from ..engines import ADJ, BigJoin, HCubeJ, HCubeJCache, SparkSQLJoin
from ..query.catalog import hard_query_names
from .generators import make_testcase

__all__ = ["TestCase", "paper_grid", "default_engines", "DEFAULT_BUDGETS"]


#: Deterministic failure budgets standing in for the paper's 12-hour
#: timeout, sized so that the runs the paper reports as failures (e.g.
#: SparkSQL beyond Q1, BigJoin beyond Q2) also fail here at default scale.
DEFAULT_BUDGETS = {
    "sparksql_tuples": 3_000_000,
    "bigjoin_bindings": 2_000_000,
    "one_round_work": 200_000_000,
}


@dataclass(frozen=True)
class TestCase:
    """A (dataset, query) pair at a given scale."""

    __test__ = False  # not a pytest class, despite the name

    dataset: str
    query_name: str
    scale: float | None = None
    seed: int | None = None

    @property
    def key(self) -> str:
        return f"({self.dataset.upper()},{self.query_name})"

    def load(self):
        return make_testcase(self.dataset, self.query_name,
                             scale=self.scale, seed=self.seed)


def paper_grid(datasets=None, queries=None, scale=None) -> list[TestCase]:
    """The Sec. VII test-case grid (all datasets x hard queries)."""
    datasets = tuple(datasets) if datasets else dataset_names()
    queries = tuple(queries) if queries else hard_query_names()
    return [TestCase(d, q, scale=scale) for d in datasets for q in queries]


def default_engines(budgets: dict | None = None,
                    num_samples: int = 100) -> list:
    """The Fig. 12 line-up with deterministic failure budgets."""
    b = dict(DEFAULT_BUDGETS)
    if budgets:
        b.update(budgets)
    return [
        SparkSQLJoin(budget_tuples=b["sparksql_tuples"]),
        BigJoin(budget_bindings=b["bigjoin_bindings"],
                work_budget=b["one_round_work"]),
        HCubeJ(work_budget=b["one_round_work"]),
        HCubeJCache(work_budget=b["one_round_work"]),
        ADJ(num_samples=num_samples, work_budget=b["one_round_work"]),
    ]
