"""Workload construction: paper test-cases and engine line-ups."""

from .generators import graph_database_for, make_testcase
from .testcases import DEFAULT_BUDGETS, TestCase, default_engines, paper_grid

__all__ = [
    "graph_database_for",
    "make_testcase",
    "DEFAULT_BUDGETS",
    "TestCase",
    "default_engines",
    "paper_grid",
]
