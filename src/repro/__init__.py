"""repro — reproduction of "Fast Distributed Complex Join Processing" (ADJ).

Public API highlights
---------------------
- :mod:`repro.api` — the front door: :class:`JoinSession`, lazy
  :class:`QueryJob`, typed :class:`RunConfig`/:class:`EngineOptions`.
- :mod:`repro.engines` — the six distributed engines and their
  string-keyed :mod:`registry <repro.engines.registry>`.
- :mod:`repro.data` — relations, tries, databases, synthetic datasets.
- :mod:`repro.query` — join queries, hypergraphs, the paper's Q1-Q11.
- :mod:`repro.wcoj` — Leapfrog triejoin and sequential baselines.
- :mod:`repro.ghd` — generalized hypertree decompositions.
- :mod:`repro.distributed` — cluster simulator and HCube shuffles.
- :mod:`repro.core` — the ADJ optimizer, cost model and sampler.
- :mod:`repro.runtime` — real parallel execution backends and telemetry.
- :mod:`repro.net` — the multi-machine data plane: TCP block store,
  worker agents (``python -m repro serve``) and the ``remote`` backend.
- :mod:`repro.service` — the multi-tenant :class:`QueryService` on a
  shared warm :class:`ClusterContext` (``python -m repro serve-sql``).
- :mod:`repro.workloads` — paper test-case construction.

Quickstart::

    from repro import JoinSession

    with JoinSession(workers=8) as session:
        report = session.query("lj", "Q1").compare()
        print(report.describe())
"""

from .api import (
    ClusterContext,
    ComparisonReport,
    EngineOptions,
    ExplainReport,
    JoinSession,
    QueryJob,
    RunConfig,
)
from .core import CardinalityEstimator, Optimizer, optimize_plan
from .data import Database, Relation, Trie
from .distributed import Cluster, CostModelParams
from .engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    YannakakisJoin,
    registry,
)
from .ghd import optimal_hypertree
from .obs import METRICS, Tracer, configure_logging, get_logger
from .query import Atom, JoinQuery, paper_query, parse_query
from .service import QueryService
from .runtime import (
    Executor,
    ProcessExecutor,
    RuntimeTelemetry,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)
from .wcoj import agm_bound, leapfrog_join
from .workloads import graph_database_for, make_testcase

__version__ = "0.2.0"

#: Pre-façade entry points kept as deprecation shims (repro.api.compat):
#: accessing them from the package root warns but works unchanged.
_DEPRECATED_SHIMS = ("run_engine_safely", "executor_for")

#: repro.net names resolved on first access — `import repro` must not
#: pull in the networking package (matching the lazy `tcp`/`remote`
#: registrations in the transport and backend registries).
_LAZY_NET = ("RemoteExecutor", "TcpTransport", "WorkerAgent")


def __getattr__(name: str):
    if name in _DEPRECATED_SHIMS:
        from .api import compat
        return getattr(compat, name)
    if name in _LAZY_NET:
        from . import net
        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "JoinSession",
    "ClusterContext",
    "QueryService",
    "QueryJob",
    "ExplainReport",
    "ComparisonReport",
    "RunConfig",
    "EngineOptions",
    "registry",
    "CardinalityEstimator",
    "Optimizer",
    "optimize_plan",
    "Database",
    "Relation",
    "Trie",
    "Cluster",
    "CostModelParams",
    "ADJ",
    "BigJoin",
    "HCubeJ",
    "HCubeJCache",
    "SparkSQLJoin",
    "YannakakisJoin",
    "run_engine_safely",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "RemoteExecutor",
    "TcpTransport",
    "WorkerAgent",
    "RuntimeTelemetry",
    "Tracer",
    "METRICS",
    "get_logger",
    "configure_logging",
    "create_executor",
    "executor_for",
    "optimal_hypertree",
    "Atom",
    "JoinQuery",
    "paper_query",
    "parse_query",
    "agm_bound",
    "leapfrog_join",
    "graph_database_for",
    "make_testcase",
    "__version__",
]
