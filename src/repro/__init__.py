"""repro — reproduction of "Fast Distributed Complex Join Processing" (ADJ).

Public API highlights
---------------------
- :mod:`repro.data` — relations, tries, databases, synthetic datasets.
- :mod:`repro.query` — join queries, hypergraphs, the paper's Q1-Q11.
- :mod:`repro.wcoj` — Leapfrog triejoin and sequential baselines.
- :mod:`repro.ghd` — generalized hypertree decompositions.
- :mod:`repro.distributed` — cluster simulator and HCube shuffles.
- :mod:`repro.core` — the ADJ optimizer, cost model and sampler.
- :mod:`repro.engines` — the five distributed engines compared in Sec. VII.
- :mod:`repro.runtime` — real parallel execution backends and telemetry.
- :mod:`repro.workloads` — paper test-case construction.
"""

from .core import CardinalityEstimator, Optimizer, optimize_plan
from .data import Database, Relation, Trie
from .distributed import Cluster, CostModelParams
from .engines import (
    ADJ,
    BigJoin,
    HCubeJ,
    HCubeJCache,
    SparkSQLJoin,
    run_engine_safely,
)
from .ghd import optimal_hypertree
from .query import Atom, JoinQuery, paper_query, parse_query
from .runtime import (
    Executor,
    ProcessExecutor,
    RuntimeTelemetry,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    executor_for,
)
from .wcoj import agm_bound, leapfrog_join
from .workloads import graph_database_for, make_testcase

__version__ = "0.1.0"

__all__ = [
    "CardinalityEstimator",
    "Optimizer",
    "optimize_plan",
    "Database",
    "Relation",
    "Trie",
    "Cluster",
    "CostModelParams",
    "ADJ",
    "BigJoin",
    "HCubeJ",
    "HCubeJCache",
    "SparkSQLJoin",
    "run_engine_safely",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "RuntimeTelemetry",
    "create_executor",
    "executor_for",
    "optimal_hypertree",
    "Atom",
    "JoinQuery",
    "paper_query",
    "parse_query",
    "agm_bound",
    "leapfrog_join",
    "graph_database_for",
    "make_testcase",
    "__version__",
]
