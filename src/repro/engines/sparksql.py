"""SparkSQL-style engine: multi-round distributed binary joins.

The paper's first baseline decomposes the query into pairwise joins and
shuffles every intermediate result (Sec. VII-A).  Each step repartitions
both inputs on the join key, hash-joins locally, and the intermediate
relation becomes the next step's left input — so on cyclic queries the
shuffled volume explodes, producing the Fig. 1(a) gap and the missing
bars of Fig. 12.
"""

from __future__ import annotations

from ..data.database import Database
from ..data.relation import Relation
from ..distributed.cluster import Cluster
from ..distributed.metrics import ShuffleStats
from ..errors import BudgetExceeded, OutOfMemory
from ..query.query import JoinQuery
from ..wcoj.binary_join import greedy_left_deep_plan
from .base import EngineResult

__all__ = ["SparkSQLJoin"]


class SparkSQLJoin:
    """Cost-ordered left-deep distributed hash join."""

    name = "SparkSQL"

    def __init__(self, budget_tuples: int | None = None):
        #: Cap on total intermediate tuples (the 12-hour-timeout analogue).
        self.budget_tuples = budget_tuples

    def run(self, query: JoinQuery, db: Database,
            cluster: Cluster) -> EngineResult:
        ledger = cluster.new_ledger()
        plan = greedy_left_deep_plan(query, db)
        # Plan selection itself is cheap (statistics lookups).
        ledger.charge_seconds(
            query.num_atoms ** 2 / cluster.params.beta_work, "optimization")

        def atom_relation(i: int) -> Relation:
            atom = query.atoms[i]
            rel = db[atom.relation]
            return Relation(f"{atom.relation}#{i}", atom.attributes,
                            rel.data, dedup=False)

        current = atom_relation(plan.atom_order[0])
        total_intermediate = 0
        memory = cluster.memory_tuples_per_worker
        params = cluster.params
        for step, i in enumerate(plan.atom_order[1:], start=1):
            right = atom_relation(i)
            common = current.common_attributes(right)
            if common:
                moved = len(current) + len(right)
            else:
                # No shared key: broadcast the smaller side.
                moved = min(len(current), len(right)) * cluster.num_workers
            ledger.charge_shuffle(
                ShuffleStats(tuple_copies=moved,
                             blocks_fetched=cluster.num_workers,
                             bytes_copied=moved * 8),
                impl="pull")
            out = current.natural_join(right)
            work = len(current) + len(right) + len(out)
            ledger.charge_seconds(
                work / (params.beta_work * cluster.num_workers),
                "computation")
            total_intermediate += len(out)
            if self.budget_tuples is not None \
                    and total_intermediate > self.budget_tuples:
                raise BudgetExceeded(total_intermediate, self.budget_tuples)
            if memory is not None:
                per_worker = len(out) / cluster.num_workers
                if per_worker > memory:
                    raise OutOfMemory(0, int(per_worker), int(memory))
            current = out
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=len(current),
            breakdown=ledger.breakdown(),
            shuffled_tuples=ledger.tuples_shuffled,
            rounds=query.num_atoms - 1,
            extra={
                "plan": plan.atom_order,
                "intermediate_tuples": total_intermediate,
            },
        )
