"""SparkSQL-style engine: multi-round distributed binary joins.

The paper's first baseline decomposes the query into pairwise joins and
shuffles every intermediate result (Sec. VII-A).  Each step repartitions
both inputs on the join key, hash-joins locally, and the intermediate
relation becomes the next step's left input — so on cyclic queries the
shuffled volume explodes, producing the Fig. 1(a) gap and the missing
bars of Fig. 12.

With a :mod:`repro.runtime` executor each step really is that plan: both
sides are hash-partitioned *by routing assignment only*, the columns go
through the executor's data-plane transport (full partitions under
``pickle``, zero-copy shared-memory descriptors under ``shm``), one
:func:`repro.runtime.worker.join_partition_pair_task` per worker joins
its partition pair, and the coordinator concatenates the (disjoint)
partition outputs.  Counts and modeled costs are identical to the inline
path; measured telemetry and physical data-plane stats are recorded
alongside.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..distributed.cluster import Cluster
from ..distributed.metrics import ShuffleStats
from ..distributed.shuffle import hash_partition_rows
from ..errors import BudgetExceeded, OutOfMemory
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..runtime.telemetry import RuntimeTelemetry
from ..kernels.binary import hash_join
from ..runtime.worker import PartitionJoinTask, join_partition_pair_task
from ..wcoj.binary_join import greedy_left_deep_plan
from .base import EngineResult

__all__ = ["SparkSQLJoin"]


class SparkSQLJoin:
    """Cost-ordered left-deep distributed hash join."""

    name = "SparkSQL"
    options_map = {"budget_tuples": "budget_tuples",
                   "kernel": "kernel"}

    def __init__(self, budget_tuples: int | None = None,
                 kernel: str | None = None):
        #: Cap on total intermediate tuples (the 12-hour-timeout analogue).
        self.budget_tuples = budget_tuples
        #: Accepted for session-level uniformity, but pinned to binary:
        #: this engine *is* the pairwise hash-join baseline.
        self.kernel = kernel

    @staticmethod
    def _partitioned_join(current: Relation, right: Relation,
                          common: tuple[str, ...], cluster: Cluster,
                          executor: Executor,
                          telemetry: RuntimeTelemetry,
                          data_plane: dict) -> Relation:
        """One join step on the runtime: route, ship refs, join, concat.

        Both sides hash on the same key order, so matching tuples land in
        the same partition and partition outputs are disjoint (equal
        output rows agree on the key, hence on the partition) — the
        concatenation below needs no re-deduplication.  Each step is one
        transport epoch: sources are published once, workers receive
        descriptors, and segments are released before the next step.
        """
        transport = executor.transport
        try:
            t0 = time.perf_counter()
            left_rows, _ = hash_partition_rows(current, common,
                                               cluster.num_workers)
            right_rows, _ = hash_partition_rows(right, common,
                                                cluster.num_workers)
            telemetry.record("partition", time.perf_counter() - t0)

            def partition_tasks():
                lkey = transport.publish(f"step:{current.name}",
                                         current.data)
                rkey = transport.publish(f"step:{right.name}",
                                         right.data)
                for lr, rr in zip(left_rows, right_rows):
                    if lr.shape[0] and rr.shape[0]:
                        yield PartitionJoinTask(
                            left=transport.make_ref(lkey, lr),
                            left_attrs=current.attributes,
                            left_name=current.name,
                            right=transport.make_ref(rkey, rr),
                            right_attrs=right.attributes,
                            right_name=right.name)

            if getattr(executor, "pipeline", False):
                # Stream pairs: the first partitions join while later
                # descriptors are still being sliced/minted.
                from ..runtime.scheduler import run_streamed

                joined = run_streamed(
                    executor, join_partition_pair_task,
                    partition_tasks(), telemetry=telemetry,
                    mint_phase="partition", run_phase="local_join")
            else:
                t1 = time.perf_counter()
                tasks = list(partition_tasks())
                telemetry.record("partition",
                                 time.perf_counter() - t1)
                t2 = time.perf_counter()
                joined = executor.map_tasks(join_partition_pair_task,
                                            tasks)
                telemetry.record("local_join", time.perf_counter() - t2)
        finally:
            transport.teardown()
        # Each step is one epoch; sum the post-teardown snapshots so the
        # run's report includes blocks freed / bytes fetched per step.
        for k, v in transport.last_epoch.as_dict().items():
            data_plane[k] = data_plane.get(k, 0) + v
        out_attrs = current.attributes + tuple(
            a for a in right.attributes if a not in common)
        out_name = f"({current.name}><{right.name})"
        chunks = [rel.reorder(out_attrs).data for rel in joined if len(rel)]
        data = np.vstack(chunks) if chunks else np.empty(
            (0, len(out_attrs)), dtype=np.int64)
        return Relation(out_name, out_attrs, data, dedup=False)

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        ledger = cluster.new_ledger()
        plan = greedy_left_deep_plan(query, db)
        # Plan selection itself is cheap (statistics lookups).
        ledger.charge_seconds(
            query.num_atoms ** 2 / cluster.params.beta_work, "optimization")
        telemetry = None
        data_plane: dict = {}
        if executor is not None:
            telemetry = RuntimeTelemetry(backend=executor.name,
                                         num_workers=cluster.num_workers)
            data_plane["transport"] = executor.transport.name

        def atom_relation(i: int) -> Relation:
            atom = query.atoms[i]
            rel = db[atom.relation]
            return Relation(f"{atom.relation}#{i}", atom.attributes,
                            rel.data, dedup=False)

        current = atom_relation(plan.atom_order[0])
        total_intermediate = 0
        memory = cluster.memory_tuples_per_worker
        params = cluster.params
        for step, i in enumerate(plan.atom_order[1:], start=1):
            right = atom_relation(i)
            common = current.common_attributes(right)
            if common:
                moved = len(current) + len(right)
            else:
                # No shared key: broadcast the smaller side.
                moved = min(len(current), len(right)) * cluster.num_workers
            ledger.charge_shuffle(
                ShuffleStats(tuple_copies=moved,
                             blocks_fetched=cluster.num_workers,
                             bytes_copied=moved * 8),
                impl="pull")
            if telemetry is not None and common:
                out = self._partitioned_join(current, right, common,
                                             cluster, executor, telemetry,
                                             data_plane)
            else:
                out = hash_join(current, right)
            work = len(current) + len(right) + len(out)
            ledger.charge_seconds(
                work / (params.beta_work * cluster.num_workers),
                "computation")
            total_intermediate += len(out)
            if self.budget_tuples is not None \
                    and total_intermediate > self.budget_tuples:
                raise BudgetExceeded(total_intermediate, self.budget_tuples)
            if memory is not None:
                per_worker = len(out) / cluster.num_workers
                if per_worker > memory:
                    raise OutOfMemory(0, int(per_worker), int(memory))
            current = out
        extra = {
            "plan": plan.atom_order,
            "intermediate_tuples": total_intermediate,
        }
        if self.kernel is not None:
            extra["kernel"] = "binary"
            extra["kernel_reason"] = ("pinned: the pairwise hash-join "
                                      "baseline is the binary kernel")
        if telemetry is not None:
            extra["telemetry"] = telemetry
            extra["data_plane"] = data_plane
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=len(current),
            breakdown=ledger.breakdown(),
            shuffled_tuples=ledger.tuples_shuffled,
            rounds=query.num_atoms - 1,
            extra=extra,
        )
