"""Engine protocol and shared helpers for the five Sec. VII competitors."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..distributed.cluster import Cluster
from ..distributed.metrics import CostBreakdown
from ..errors import BudgetExceeded, ConfigError, OutOfMemory, WorkerCrashed
from ..ghd.decomposition import Hypertree
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..runtime.telemetry import RuntimeTelemetry

__all__ = ["EngineResult", "Engine", "EngineOptions", "run_engine_safely",
           "engine_from_options", "attach_degree_order"]


@dataclass(frozen=True)
class EngineOptions:
    """Typed knobs shared by every engine constructor.

    Each field defaults to ``None``, meaning "use the engine's own
    default".  An engine declares which fields it understands (and what
    constructor keyword each maps to) in its ``options_map`` class
    attribute; :func:`engine_from_options` performs the translation, so
    callers — the registry, :class:`repro.api.JoinSession`, benches —
    never need per-engine keyword knowledge.
    """

    #: Optimizer sample budget (ADJ's ``num_samples``).
    samples: int | None = None
    #: Seed for sampling-based optimization.
    seed: int | None = None
    #: Leapfrog work budget, the paper's 12-hour-timeout analogue.
    work_budget: int | None = None
    #: Cap on intermediate tuples (SparkSQL's timeout analogue).
    budget_tuples: int | None = None
    #: Cap on shuffled bindings (BigJoin's timeout analogue).
    budget_bindings: int | None = None
    #: Explicit attribute order (engines that accept one).
    order: tuple[str, ...] | None = None
    #: Explicit hypertree decomposition (engines that accept one).
    hypertree: Hypertree | None = None
    #: :mod:`repro.kernels` key (``wcoj`` | ``binary`` | ``adaptive``)
    #: for per-bag/per-cube join execution; None keeps each engine's
    #: historical pure-Leapfrog path.
    kernel: str | None = None

    def merged_with(self, other: "EngineOptions | None" = None,
                    **overrides) -> "EngineOptions":
        """A copy where ``other``'s (then ``overrides``'s) non-None
        fields win over this instance's."""
        values = {f.name: getattr(self, f.name)
                  for f in dataclasses.fields(self)}
        if other is not None:
            for f in dataclasses.fields(other):
                v = getattr(other, f.name)
                if v is not None:
                    values[f.name] = v
        for key, v in overrides.items():
            if key not in values:
                raise ConfigError(
                    f"unknown engine option {key!r}; choose from "
                    f"{tuple(values)}")
            if v is not None:
                values[key] = v
        return EngineOptions(**values)


def engine_from_options(cls, options: EngineOptions | None):
    """Instantiate an engine class from an :class:`EngineOptions`.

    Only the fields named in ``cls.options_map`` are consulted; ``None``
    fields are omitted so the constructor defaults apply.
    """
    kwargs = {}
    if options is not None:
        for opt_field, ctor_kwarg in getattr(cls, "options_map",
                                             {}).items():
            value = getattr(options, opt_field)
            if value is not None:
                kwargs[ctor_kwarg] = value
    return cls(**kwargs)


@dataclass
class EngineResult:
    """What one engine run produced (or how it failed)."""

    engine: str
    query: str
    count: int
    breakdown: CostBreakdown
    shuffled_tuples: int = 0
    rounds: int = 1
    failure: str | None = None        # None | "oom" | "budget" | "crash"
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def total_seconds(self) -> float:
        return self.breakdown.total

    @property
    def telemetry(self) -> RuntimeTelemetry | None:
        """Measured wall-clock telemetry, when the run used a backend."""
        return self.extra.get("telemetry")

    @property
    def data_plane(self) -> dict | None:
        """Physical data-plane counters, when the run used a backend.

        Keys follow :class:`repro.runtime.transport.TransportStats`
        (``published_bytes``, ``shipped_bytes``, ``fetched_bytes``,
        ``freed_blocks``, ...) plus ``transport`` — the basis for
        comparing pickle vs shm vs tcp movement on the same run.
        """
        return self.extra.get("data_plane")

    @property
    def measured_seconds(self) -> float | None:
        t = self.telemetry
        return t.total if t is not None else None

    @property
    def trace(self) -> dict | None:
        """Chrome trace-event document for this run, when traced.

        Present when the session had tracing enabled
        (``RunConfig.trace_path`` / ``REPRO_TRACE`` / CLI ``--trace``):
        a ``{"traceEvents": [...]}`` dict covering this run's spans —
        route, publish, every worker task, including spans merged back
        from remote agents.  Load it in Perfetto or
        ``chrome://tracing``.  See docs/observability.md.
        """
        return self.extra.get("trace")

    @property
    def profile(self):
        """The EXPLAIN ANALYZE report, when the run was profiled.

        A :class:`repro.obs.profile.QueryProfile` attached by
        ``QueryJob.run(profile=True)`` / ``repro run --profile``:
        modeled-vs-measured phases, per-worker skew, per-atom bytes and
        the query's scoped metrics window.  None otherwise.
        """
        return self.extra.get("profile")


class Engine(Protocol):
    """A distributed join engine (the paper's competing methods)."""

    name: str
    #: EngineOptions field -> constructor keyword (see engine_from_options).
    options_map: dict[str, str]

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        """Evaluate the query; raises OutOfMemory / BudgetExceeded.

        ``executor`` selects the :mod:`repro.runtime` backend carrying
        the local per-worker computation; None keeps the historical
        inline (simulated) evaluation.
        """
        ...


def _failure_extra(executor: Executor | None, baseline, **extra) -> dict:
    """Extra payload for a failed run: real data-plane counters included.

    The engine's own ``finally`` has already torn the epoch down by the
    time the failure reaches here, freezing its true counters into the
    transport's ``last_epoch`` — so failed runs report what they
    actually published/shipped instead of zeros.  ``baseline`` is the
    ``last_epoch`` object observed *before* the run: every teardown
    replaces it, so an unchanged identity means this run never tore an
    epoch down (it failed before touching the transport) and reporting
    the previous run's counters would be a lie — report nothing.
    """
    if executor is not None:
        transport = executor.transport
        epoch = transport.last_epoch
        if epoch is not baseline and (epoch.published_blocks
                                      or epoch.shipped_refs):
            extra["data_plane"] = dict(epoch.as_dict(),
                                       transport=transport.name)
    return extra


def run_engine_safely(engine: Engine, query: JoinQuery, db: Database,
                      cluster: Cluster,
                      executor: Executor | None = None) -> EngineResult:
    """Run an engine, converting the paper's two failure modes into a
    failed :class:`EngineResult` (missing bar / frame-top bar).  Runtime
    worker crashes surface the same way (``failure="crash"``)."""
    baseline = executor.transport.last_epoch if executor is not None \
        else None
    try:
        if executor is not None:
            return engine.run(query, db, cluster, executor=executor)
        return engine.run(query, db, cluster)
    except OutOfMemory:
        return EngineResult(engine=engine.name, query=query.name, count=-1,
                            breakdown=CostBreakdown(), failure="oom",
                            extra=_failure_extra(executor, baseline))
    except BudgetExceeded:
        return EngineResult(engine=engine.name, query=query.name, count=-1,
                            breakdown=CostBreakdown(), failure="budget",
                            extra=_failure_extra(executor, baseline))
    except WorkerCrashed as exc:
        return EngineResult(engine=engine.name, query=query.name, count=-1,
                            breakdown=CostBreakdown(), failure="crash",
                            extra=_failure_extra(executor, baseline,
                                                 crash_reason=str(exc)))


def attach_degree_order(query: JoinQuery, db: Database) -> tuple[str, ...]:
    """The all-space attribute-order heuristic used by HCubeJ ([11]).

    Greedy: start from the attribute with the fewest distinct values
    (most selective), then repeatedly append the attribute occurring in
    the most atoms that already touch the bound set, breaking ties by
    distinct-value count.  This is the baseline 'All-Selected' order of
    Fig. 8 — deliberately *not* restricted to hypertree-valid orders.
    """
    distinct: dict[str, int] = {}
    for attr in query.attributes:
        best = None
        for atom in query.atoms_with(attr):
            rel = db[atom.relation]
            col = atom.attributes.index(attr)
            count = rel.distinct_count(rel.attributes[col])
            best = count if best is None else min(best, count)
        distinct[attr] = best or 0
    order = [min(query.attributes, key=lambda a: (distinct[a], a))]
    while len(order) < len(query.attributes):
        bound = set(order)
        remaining = [a for a in query.attributes if a not in bound]

        def connectivity(a: str) -> int:
            return sum(1 for atom in query.atoms_with(a)
                       if bound & set(atom.attributes))

        order.append(max(remaining,
                         key=lambda a: (connectivity(a), -distinct[a], a)))
    return tuple(order)
