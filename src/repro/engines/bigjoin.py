"""BigJoin: multi-round distributed worst-case optimal join (Ammar et al.).

BigJoin parallelizes Leapfrog one attribute at a time: round i extends the
distributed set of i-bindings by the next attribute, shuffling the
binding batches to the workers holding the relevant index ranges.  Its
computation is worst-case optimal (much better than SparkSQL) but its
communication grows with the intermediate binding counts, so on the
denser cyclic queries (Q3+) it drowns in shuffled prefixes — exactly the
Fig. 12 behaviour.

The per-round binding counts equal Leapfrog's per-level intermediate
tuple counts, so the engine executes one instrumented Leapfrog pass and
charges one shuffle round per attribute from the recorded levels.

With a :mod:`repro.runtime` executor the Leapfrog pass runs *physically
parallel*: the value space of the order's first attribute is partitioned
across workers (an HCube grid that spends the whole share budget on that
attribute, so relations containing it split and the rest replicate), and
each worker explores its disjoint slice of the binding tree.  The merged
per-level counts equal the global pass exactly, so the modeled
round-per-attribute accounting is unchanged — only wall-clock improves.
"""

from __future__ import annotations

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.hcube import HypercubeGrid, hcube_route
from ..distributed.metrics import ShuffleStats
from ..errors import BudgetExceeded, OutOfMemory
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..runtime.scheduler import (
    build_routed_tasks,
    iter_routed_tasks,
    merge_task_results,
    run_streamed_tasks,
    run_worker_tasks,
)
from ..runtime.telemetry import RuntimeTelemetry
from ..wcoj.leapfrog import leapfrog_join
from .base import EngineResult, attach_degree_order

__all__ = ["BigJoin"]


class BigJoin:
    """Round-per-attribute parallel Leapfrog."""

    name = "BigJoin"
    options_map = {"budget_bindings": "budget_bindings",
                   "work_budget": "work_budget", "order": "order",
                   "kernel": "kernel"}

    def __init__(self, budget_bindings: int | None = None,
                 work_budget: int | None = None,
                 order: tuple[str, ...] | None = None,
                 kernel: str | None = None):
        #: Cap on total shuffled bindings (timeout analogue).
        self.budget_bindings = budget_bindings
        self.work_budget = work_budget
        self.order = order
        #: Accepted for session-level uniformity, but pinned to wcoj:
        #: the round-per-attribute cost model charges shuffles from the
        #: per-level binding counts only Leapfrog produces.
        self.kernel = kernel

    def _parallel_pass(self, query: JoinQuery, db: Database,
                       cluster: Cluster, order: tuple[str, ...],
                       executor: Executor, telemetry: RuntimeTelemetry):
        """One Leapfrog pass split over workers by the first attribute.

        The partition grid is an execution mechanism, not part of the
        modeled communication (the model charges the round-per-attribute
        shuffles below), so its stats are not booked on the ledger.
        """
        from ..runtime.executor import available_parallelism

        pipelined = getattr(executor, "pipeline", False)
        shares = {a: 1 for a in query.attributes}
        shares[order[0]] = cluster.num_workers
        grid = HypercubeGrid(query, shares, cluster.num_workers)
        with telemetry.measure("shuffle"):
            routing = hcube_route(
                query, db, grid, impl="pull",
                routing_threads=(available_parallelism()
                                 if pipelined else None))
        transport = executor.transport
        try:
            if pipelined:
                results = run_streamed_tasks(
                    executor,
                    iter_routed_tasks(routing, db, order,
                                      budget=self.work_budget,
                                      transport=transport),
                    telemetry=telemetry)
            else:
                with telemetry.measure("publish"):
                    tasks = build_routed_tasks(routing, db, order,
                                               budget=self.work_budget,
                                               transport=transport)
                results = run_worker_tasks(executor, tasks,
                                           telemetry=telemetry)
            merged = merge_task_results(results, len(order),
                                        budget=self.work_budget)
        finally:
            transport.teardown()
        # Post-teardown snapshot: includes blocks freed / bytes fetched.
        data_plane = dict(transport.last_epoch.as_dict(),
                          transport=transport.name)
        return merged, data_plane

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        ledger = cluster.new_ledger()
        order = self.order or attach_degree_order(query, db)
        ledger.charge_seconds(
            query.num_atoms * query.num_attributes
            / cluster.params.beta_work, "optimization")
        telemetry = None
        data_plane = None
        if executor is not None:
            telemetry = RuntimeTelemetry(backend=executor.name,
                                         num_workers=cluster.num_workers)
            merged, data_plane = self._parallel_pass(query, db, cluster,
                                                     order, executor,
                                                     telemetry)
            count = merged.count
            level_tuples = merged.level_tuples
            intersection_work = merged.total_work
        else:
            result = leapfrog_join(query, db, order,
                                   budget=self.work_budget)
            count = result.count
            level_tuples = result.stats.level_tuples
            intersection_work = result.stats.intersection_work
        n = len(order)
        memory = cluster.memory_tuples_per_worker
        total_bindings = 0
        # One shuffle round per attribute: the (i-1)-bindings travel to the
        # workers owning the round's index partitions.
        for d in range(n):
            inbound = 1 if d == 0 else level_tuples[d - 1]
            ledger.charge_shuffle(
                ShuffleStats(tuple_copies=inbound,
                             blocks_fetched=cluster.num_workers,
                             bytes_copied=inbound * 8 * max(1, d)),
                impl="pull")
            total_bindings += level_tuples[d]
            if self.budget_bindings is not None \
                    and total_bindings > self.budget_bindings:
                raise BudgetExceeded(total_bindings, self.budget_bindings)
            if memory is not None:
                per_worker = level_tuples[d] / cluster.num_workers
                if per_worker > memory:
                    raise OutOfMemory(0, int(per_worker), int(memory))
        ledger.charge_seconds(
            intersection_work
            / (cluster.params.beta_work * cluster.num_workers),
            "computation")
        extra = {
            "order": order,
            "level_tuples": level_tuples,
            "total_bindings": total_bindings,
        }
        if self.kernel is not None:
            extra["kernel"] = "wcoj"
            extra["kernel_reason"] = ("pinned: round-per-attribute model "
                                      "needs per-level binding counts")
        if telemetry is not None:
            extra["telemetry"] = telemetry
        if data_plane is not None:
            extra["data_plane"] = data_plane
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=count,
            breakdown=ledger.breakdown(),
            shuffled_tuples=ledger.tuples_shuffled,
            rounds=n,
            extra=extra,
        )
