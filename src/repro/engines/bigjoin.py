"""BigJoin: multi-round distributed worst-case optimal join (Ammar et al.).

BigJoin parallelizes Leapfrog one attribute at a time: round i extends the
distributed set of i-bindings by the next attribute, shuffling the
binding batches to the workers holding the relevant index ranges.  Its
computation is worst-case optimal (much better than SparkSQL) but its
communication grows with the intermediate binding counts, so on the
denser cyclic queries (Q3+) it drowns in shuffled prefixes — exactly the
Fig. 12 behaviour.

The per-round binding counts equal Leapfrog's per-level intermediate
tuple counts, so the engine executes one instrumented Leapfrog pass and
charges one shuffle round per attribute from the recorded levels.
"""

from __future__ import annotations

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.metrics import ShuffleStats
from ..errors import BudgetExceeded, OutOfMemory
from ..query.query import JoinQuery
from ..wcoj.leapfrog import leapfrog_join
from .base import EngineResult, attach_degree_order

__all__ = ["BigJoin"]


class BigJoin:
    """Round-per-attribute parallel Leapfrog."""

    name = "BigJoin"

    def __init__(self, budget_bindings: int | None = None,
                 work_budget: int | None = None,
                 order: tuple[str, ...] | None = None):
        #: Cap on total shuffled bindings (timeout analogue).
        self.budget_bindings = budget_bindings
        self.work_budget = work_budget
        self.order = order

    def run(self, query: JoinQuery, db: Database,
            cluster: Cluster) -> EngineResult:
        ledger = cluster.new_ledger()
        order = self.order or attach_degree_order(query, db)
        ledger.charge_seconds(
            query.num_atoms * query.num_attributes
            / cluster.params.beta_work, "optimization")
        result = leapfrog_join(query, db, order, budget=self.work_budget)
        stats = result.stats
        n = len(order)
        memory = cluster.memory_tuples_per_worker
        total_bindings = 0
        # One shuffle round per attribute: the (i-1)-bindings travel to the
        # workers owning the round's index partitions.
        for d in range(n):
            inbound = 1 if d == 0 else stats.level_tuples[d - 1]
            ledger.charge_shuffle(
                ShuffleStats(tuple_copies=inbound,
                             blocks_fetched=cluster.num_workers,
                             bytes_copied=inbound * 8 * max(1, d)),
                impl="pull")
            total_bindings += stats.level_tuples[d]
            if self.budget_bindings is not None \
                    and total_bindings > self.budget_bindings:
                raise BudgetExceeded(total_bindings, self.budget_bindings)
            if memory is not None:
                per_worker = stats.level_tuples[d] / cluster.num_workers
                if per_worker > memory:
                    raise OutOfMemory(0, int(per_worker), int(memory))
        ledger.charge_seconds(
            stats.intersection_work
            / (cluster.params.beta_work * cluster.num_workers),
            "computation")
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=result.count,
            breakdown=ledger.breakdown(),
            shuffled_tuples=ledger.tuples_shuffled,
            rounds=n,
            extra={
                "order": order,
                "level_tuples": stats.level_tuples,
                "total_bindings": total_bindings,
            },
        )
