"""ADJ — the paper's system: co-optimized one-round join (Sec. III).

Pipeline: (1) sample-based optimization picks a plan (which bags to
pre-compute, bag traversal order, attribute order); (2) the chosen bags
are joined and materialized (pre-computing phase); (3) the rewritten
query is HCube-shuffled with the optimized Merge implementation and every
cube runs Leapfrog under the plan's attribute order.  Each phase charges
its own ledger line so the Tables II-IV breakdown falls out directly.
"""

from __future__ import annotations

import numpy as np

from ..data.database import Database
from ..data.relation import Relation
from ..distributed.cluster import Cluster
from ..distributed.metrics import CostLedger
from ..errors import PlanError
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from .base import EngineResult
from .one_round import one_round_execute
from ..core.optimizer import Optimizer, OptimizerReport
from ..core.plan import QueryPlan
from ..core.sampling import CardinalityEstimator

__all__ = ["ADJ"]


class ADJ:
    """Adaptive Distributed Join."""

    name = "ADJ"
    hcube_impl = "merge"
    options_map = {"samples": "num_samples", "seed": "seed",
                   "work_budget": "work_budget", "hypertree": "hypertree",
                   "kernel": "kernel"}

    def __init__(self, num_samples: int = 200, seed: int = 0,
                 work_budget: int | None = None,
                 hypertree: Hypertree | None = None,
                 kernel: str | None = None):
        self.num_samples = num_samples
        self.seed = seed
        self.work_budget = work_budget
        self.hypertree = hypertree
        self.kernel = kernel

    # -- phases ------------------------------------------------------------------

    def _optimize(self, query: JoinQuery, db: Database, cluster: Cluster,
                  ledger: CostLedger) -> OptimizerReport:
        estimator = CardinalityEstimator(
            db, num_samples=self.num_samples, seed=self.seed)
        tree = self.hypertree or optimal_hypertree(query)
        report = Optimizer(query, db, cluster, hypertree=tree,
                           estimator=estimator,
                           hcube_impl=self.hcube_impl).run()
        params = cluster.params
        # Sampling runs distributed: Leapfrog probes spread over workers.
        ledger.charge_seconds(
            report.sampling_work / (params.beta_work * cluster.num_workers),
            "optimization")
        # The semijoin-reduced sampling shuffle (Sec. IV): the dominant
        # communication is exchanging the first attribute's projections.
        attr = query.attributes[0]
        projection_tuples = sum(
            db[a.relation].distinct_count(
                db[a.relation].attributes[a.attributes.index(attr)])
            for a in query.atoms_with(attr))
        ledger.charge_seconds(projection_tuples / params.alpha_pull,
                              "optimization")
        return report

    def _precompute(self, plan: QueryPlan, db: Database, cluster: Cluster,
                    ledger: CostLedger) -> Database:
        """Materialize every chosen candidate relation."""
        from ..wcoj.leapfrog import leapfrog_join

        params = cluster.params
        working = Database(
            Relation(rel.name, rel.attributes, rel.data, dedup=False)
            for rel in db)
        for cand in plan.candidates:
            if self.kernel is not None:
                from ..kernels import create_kernel
                from ..kernels.adaptive import select_kernel

                choice = select_kernel(self.kernel, cand.subquery, db,
                                       scope=f"precompute:{cand.name}")
                result = create_kernel(choice.key).execute(
                    cand.subquery, db, cand.attributes, materialize=True,
                    budget=self.work_budget)
            else:
                result = leapfrog_join(cand.subquery, db,
                                       order=cand.attributes,
                                       materialize=True,
                                       budget=self.work_budget)
            rel = Relation(cand.name, cand.attributes,
                           result.relation.data, dedup=False)
            if rel.name in working:
                raise PlanError(f"candidate name clash: {rel.name}")
            working.add(rel)
            input_tuples = sum(len(db[a.relation])
                               for a in cand.subquery.atoms)
            ledger.charge_seconds(
                input_tuples / params.alpha_for(self.hcube_impl),
                "precompute")
            ledger.charge_seconds(
                result.stats.intersection_work
                / (params.beta_work * cluster.num_workers),
                "precompute")
        return working

    # -- entry points --------------------------------------------------------------

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        ledger = cluster.new_ledger()
        report = self._optimize(query, db, cluster, ledger)
        return self._execute(report.plan, db, cluster, ledger,
                             optimizer_report=report, executor=executor)

    def run_with_plan(self, plan: QueryPlan, db: Database,
                      cluster: Cluster,
                      executor: Executor | None = None) -> EngineResult:
        """Execute a caller-supplied plan (ablation benches)."""
        return self._execute(plan, db, cluster, cluster.new_ledger(),
                             executor=executor)

    def _execute(self, plan: QueryPlan, db: Database, cluster: Cluster,
                 ledger: CostLedger,
                 optimizer_report: OptimizerReport | None = None,
                 executor: Executor | None = None
                 ) -> EngineResult:
        working = self._precompute(plan, db, cluster, ledger)
        rewritten = plan.rewritten_query()
        outcome = one_round_execute(
            rewritten, working, cluster, plan.attribute_order, ledger,
            impl=self.hcube_impl, work_budget=self.work_budget,
            executor=executor, kernel=self.kernel)
        extra = {
            "plan": plan.describe(),
            "order": plan.attribute_order,
            "precomputed": tuple(c.name for c in plan.candidates),
            "level_tuples": outcome.level_tuples,
            "leapfrog_work": outcome.leapfrog_work,
            "worker_work": outcome.worker_work,
            "worker_loads": outcome.worker_loads,
        }
        if outcome.kernel is not None:
            extra["kernel"] = outcome.kernel
            extra["kernel_reason"] = outcome.kernel_reason
        if outcome.telemetry is not None:
            extra["telemetry"] = outcome.telemetry
        if outcome.data_plane is not None:
            extra["data_plane"] = outcome.data_plane
        if optimizer_report is not None:
            extra["explored_configurations"] = \
                optimizer_report.explored_configurations
            extra["estimated_cost"] = plan.estimated_cost
        return EngineResult(
            engine=self.name,
            query=plan.query.name,
            count=outcome.count,
            breakdown=ledger.breakdown(),
            shuffled_tuples=outcome.shuffled_tuples,
            rounds=1,
            extra=extra,
        )
