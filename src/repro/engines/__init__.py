"""The five distributed engines compared in Sec. VII (plus Yannakakis).

Engines are looked up by string key through :mod:`repro.engines.registry`
(``registry.create("adj", samples=50)``); construct the classes directly
when you need non-registry knobs.
"""

from . import registry
from .adj import ADJ
from .base import (
    Engine,
    EngineOptions,
    EngineResult,
    attach_degree_order,
    engine_from_options,
    run_engine_safely,
)
from .bigjoin import BigJoin
from .hcubej import HCubeJ
from .hcubej_cache import HCubeJCache
from .one_round import OneRoundOutcome, one_round_execute
from .sparksql import SparkSQLJoin
from .yannakakis import YannakakisJoin

__all__ = [
    "ADJ",
    "Engine",
    "EngineOptions",
    "EngineResult",
    "attach_degree_order",
    "engine_from_options",
    "registry",
    "run_engine_safely",
    "BigJoin",
    "HCubeJ",
    "HCubeJCache",
    "OneRoundOutcome",
    "one_round_execute",
    "SparkSQLJoin",
    "YannakakisJoin",
]
