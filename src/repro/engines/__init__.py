"""The five distributed engines compared in Sec. VII."""

from .adj import ADJ
from .base import Engine, EngineResult, attach_degree_order, run_engine_safely
from .bigjoin import BigJoin
from .hcubej import HCubeJ
from .hcubej_cache import HCubeJCache
from .one_round import OneRoundOutcome, one_round_execute
from .sparksql import SparkSQLJoin
from .yannakakis import YannakakisJoin

__all__ = [
    "ADJ",
    "Engine",
    "EngineResult",
    "attach_degree_order",
    "run_engine_safely",
    "BigJoin",
    "HCubeJ",
    "HCubeJCache",
    "OneRoundOutcome",
    "one_round_execute",
    "SparkSQLJoin",
    "YannakakisJoin",
]
