"""String-keyed engine registry: one source of truth for engine names.

The CLI ``--engine`` choices, the benchmark lineups and the
:class:`repro.api.JoinSession` façade all used to carry their own
hand-rolled ``{"adj": ADJ, ...}`` tables.  This module replaces them:

>>> from repro.engines import registry
>>> registry.available()
('sparksql', 'bigjoin', 'hcubej', 'hcubej-cache', 'adj', 'yannakakis')
>>> engine = registry.create("adj", samples=50)

``create`` accepts an :class:`~repro.engines.base.EngineOptions` (plus
field-name keyword overrides) and translates it through each engine's
``options_map``, so callers never need per-engine constructor keywords.

New engines register with :func:`register` — as a plain call or a class
decorator — and immediately show up in the CLI, the benches and
``JoinSession.engines()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .adj import ADJ
from .base import Engine, EngineOptions, engine_from_options
from .bigjoin import BigJoin
from .hcubej import HCubeJ
from .hcubej_cache import HCubeJCache
from .sparksql import SparkSQLJoin
from .yannakakis import YannakakisJoin

__all__ = ["EngineSpec", "register", "create", "available", "spec",
           "display_name"]


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: key, class, one-line summary."""

    key: str
    cls: type
    summary: str = ""

    @property
    def display_name(self) -> str:
        """The engine's human-facing name (``ADJ``, ``HCubeJ+Cache``...)."""
        return getattr(self.cls, "name", self.key)


_REGISTRY: dict[str, EngineSpec] = {}


def register(key: str, cls: type | None = None, *, summary: str = ""):
    """Register an engine class under ``key``.

    Usable as a call (``register("adj", ADJ)``) or a decorator
    (``@register("myengine")``).  Re-registering an existing key is an
    error — remove the old entry first (tests may monkeypatch
    ``_REGISTRY`` instead).
    """
    def _add(c: type) -> type:
        if key in _REGISTRY:
            raise ConfigError(f"engine {key!r} is already registered")
        _REGISTRY[key] = EngineSpec(key=key, cls=c, summary=summary)
        return c

    if cls is None:
        return _add
    return _add(cls)


def available() -> tuple[str, ...]:
    """Registered engine keys, in registration order."""
    return tuple(_REGISTRY)


def spec(key: str) -> EngineSpec:
    """The :class:`EngineSpec` for ``key`` (raises ConfigError)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigError(
            f"unknown engine {key!r}; choose from {available()}") from None


def display_name(key: str) -> str:
    return spec(key).display_name


def create(key: str, options: EngineOptions | None = None,
           **overrides) -> Engine:
    """Instantiate the engine registered under ``key``.

    ``options`` supplies typed knobs; ``overrides`` are
    :class:`EngineOptions` field names that win over ``options``
    (``create("adj", opts, samples=50)``).  Fields an engine does not
    declare in its ``options_map`` are silently ignored, so one options
    object can drive a whole multi-engine lineup.
    """
    engine_spec = spec(key)
    if overrides:
        options = (options or EngineOptions()).merged_with(**overrides)
    return engine_from_options(engine_spec.cls, options)


# -- the six built-in engines (Sec. VII lineup + Yannakakis) -----------------

register("sparksql", SparkSQLJoin,
         summary="multi-round distributed binary hash joins")
register("bigjoin", BigJoin,
         summary="round-per-attribute parallel Leapfrog (Ammar et al.)")
register("hcubej", HCubeJ,
         summary="one-round HCube + Leapfrog, communication-first")
register("hcubej-cache", HCubeJCache,
         summary="HCubeJ with bounded per-cube intersection caches")
register("adj", ADJ,
         summary="the paper's co-optimized one-round engine")
register("yannakakis", YannakakisJoin,
         summary="GHD + full reducer + bottom-up joins (acyclic)")
