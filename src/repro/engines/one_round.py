"""Shared one-round execution: HCube shuffle + per-cube Leapfrog.

Used by HCubeJ, HCubeJ+Cache and ADJ — they differ only in the shuffle
implementation, the attribute order, the presence of an intersection
cache, and (for ADJ) the pre-computed relations in the database.

Two execution paths produce identical counts and identical modeled
costs:

- the **inline path** (default, ``executor=None``) evaluates every cube
  in the calling process, exactly the historical simulated behaviour;
- the **runtime path** (any :class:`repro.runtime.Executor`) computes
  routing assignments only (:func:`repro.distributed.hcube.hcube_route`),
  publishes the source columns through the executor's data-plane
  transport, and ships workers per-cube descriptors — workers slice
  their own partitions, so under the ``shm`` transport large arrays
  never cross the process boundary through pickle.  Measured wall-clock
  telemetry and physical data-plane stats are recorded next to the
  modeled ledger.

Intersection caches (HCubeJ+Cache) are worker-local: the coordinator
ships a capacity, each worker builds its own per-cube cache, and the
merged hit/miss counters equal the inline path's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.hcube import HypercubeGrid, hcube_route
from ..distributed.metrics import CostLedger, ShuffleStats
from ..distributed.partitioner import optimize_shares
from ..errors import BudgetExceeded
from ..obs.tracing import current_tracer
from ..query.query import JoinQuery
from ..runtime.executor import Executor, available_parallelism
from ..runtime.scheduler import (
    build_routed_tasks,
    iter_routed_tasks,
    merge_task_results,
    run_streamed_tasks,
    run_worker_tasks,
)
from ..runtime.telemetry import RuntimeTelemetry
from ..wcoj.cache import IntersectionCache
from ..wcoj.leapfrog import LeapfrogStats, leapfrog_join

__all__ = ["OneRoundOutcome", "one_round_execute"]


@dataclass
class OneRoundOutcome:
    """Counts and aggregated statistics of one one-round evaluation."""

    count: int
    level_tuples: list[int]
    leapfrog_work: int
    shuffled_tuples: int
    max_worker_tuples: int
    cache_hits: int = 0
    cache_misses: int = 0
    worker_work: dict[int, float] | None = None
    worker_loads: dict[int, int] | None = None
    telemetry: RuntimeTelemetry | None = None
    #: Concrete :mod:`repro.kernels` key the cubes ran with (None on the
    #: historical kernel-less path) and the chooser's reason.
    kernel: str | None = None
    kernel_reason: str | None = None
    #: Physical data-plane movement (runtime path only): what the
    #: coordinator actually serialized into task payloads.  Under the
    #: shm transport ``data_plane_stats.bytes_copied`` counts descriptor
    #: bytes, not full array bytes — the modeled ``ShuffleStats`` are
    #: transport-independent.
    data_plane: dict | None = None
    data_plane_stats: ShuffleStats | None = None


def one_round_execute(query: JoinQuery, db: Database, cluster: Cluster,
                      order: Sequence[str], ledger: CostLedger,
                      impl: str = "push",
                      cache_capacity: Callable[[int], int] | None = None,
                      work_budget: int | None = None,
                      comm_phase: str = "communication",
                      executor: Executor | None = None,
                      telemetry: RuntimeTelemetry | None = None,
                      kernel: str | None = None) -> OneRoundOutcome:
    """Shuffle with HCube, then run Leapfrog on every cube.

    ``cache_capacity(worker_load)`` sizes a per-cube intersection cache
    from the memory left after the shuffle (HCubeJ+Cache); it must be a
    coordinator-side callable returning plain ints so the capacity —
    never the cache object — crosses the process boundary.
    Communication is charged to ``comm_phase`` so ADJ can book the bag
    shuffles under pre-computing.

    ``executor`` selects the runtime backend for the per-cube Leapfrog
    work; its :attr:`~repro.runtime.Executor.transport` carries the
    payloads and is torn down (segments released) when the run finishes,
    successfully or not.

    ``kernel`` is a :mod:`repro.kernels` key (``adaptive`` resolves to a
    concrete kernel once, on the coordinator, against the full database
    — every cube then runs the same choice).  ``None`` keeps the
    historical pure-Leapfrog path, bit-identical to the seed counters.
    """
    kernel_choice = None
    if kernel is not None:
        from ..kernels.adaptive import select_kernel

        kernel_choice = select_kernel(kernel, query, db,
                                      scope=f"one_round:{impl}")
    kernel_key = kernel_choice.key if kernel_choice is not None else "wcoj"
    if telemetry is None and executor is not None:
        telemetry = RuntimeTelemetry(backend=executor.name,
                                     num_workers=cluster.num_workers)
    # Pipelined epochs (default on): route atoms on a coordinator thread
    # pool, then stream tasks so publish/mint overlaps execution.
    pipelined = executor is not None and getattr(executor, "pipeline",
                                                 False)
    sizes = {a.relation: len(db[a.relation]) for a in query.atoms}
    shares = optimize_shares(query, sizes, cluster.num_workers,
                             memory_tuples=cluster.memory_tuples_per_worker)
    grid = HypercubeGrid(query, shares, cluster.num_workers)
    shuffle_start = time.perf_counter()
    routing = hcube_route(query, db, grid, impl=impl,
                          memory_tuples=cluster.memory_tuples_per_worker,
                          routing_threads=(available_parallelism()
                                           if pipelined else None))
    if telemetry is not None:
        telemetry.record("shuffle", time.perf_counter() - shuffle_start)
    ledger.charge_shuffle(routing.stats, impl, phase=comm_phase)
    # Local trie construction (skipped cost-wise by Merge: blocks arrive
    # as pre-built tries and only need merging).
    rate = (cluster.params.trie_merge_rate if routing.prebuilt_tries
            else cluster.params.trie_build_rate)
    ledger.charge_worker_work(
        {w: float(load) for w, load in routing.worker_loads.items()},
        rate=rate, phase="computation")

    order = tuple(order)
    if executor is not None:
        # Runtime path: routing assignments + transport descriptors.
        transport = executor.transport
        try:
            if pipelined:
                # Streamed: workers start on the first tasks while the
                # coordinator is still publishing/slicing later ones.
                task_stream = iter_routed_tasks(
                    routing, db, order, budget=work_budget,
                    transport=transport, cache_capacity=cache_capacity,
                    kernel=kernel_key)
                results = run_streamed_tasks(executor, task_stream,
                                             telemetry=telemetry)
            else:
                publish_start = time.perf_counter()
                tasks = build_routed_tasks(routing, db, order,
                                           budget=work_budget,
                                           transport=transport,
                                           cache_capacity=cache_capacity,
                                           kernel=kernel_key)
                if telemetry is not None:
                    telemetry.record("publish",
                                     time.perf_counter() - publish_start)
                results = run_worker_tasks(executor, tasks,
                                           telemetry=telemetry)
            with current_tracer().span("merge", cat="schedule",
                                       tasks=len(results)):
                merged = merge_task_results(results, len(order),
                                            budget=work_budget)
        finally:
            with current_tracer().span("teardown", cat="transport",
                                       transport=transport.name):
                transport.teardown()
        # Read the epoch snapshot *after* teardown so the report includes
        # teardown-time counters (blocks freed, bytes workers fetched
        # back out of a tcp block store).
        epoch = transport.last_epoch
        data_plane = dict(epoch.as_dict(), transport=transport.name)
        data_plane_stats = ShuffleStats(
            tuple_copies=routing.stats.tuple_copies,
            blocks_fetched=epoch.shipped_refs,
            bytes_copied=epoch.shipped_bytes,
            max_worker_tuples=routing.stats.max_worker_tuples)
        worker_work = {w: 0.0 for w in range(cluster.num_workers)}
        worker_work.update(merged.worker_work)
        ledger.charge_worker_work(worker_work, phase="computation")
        return OneRoundOutcome(
            count=merged.count,
            level_tuples=merged.level_tuples,
            leapfrog_work=merged.total_work,
            shuffled_tuples=routing.stats.tuple_copies,
            max_worker_tuples=routing.stats.max_worker_tuples,
            cache_hits=merged.cache_hits,
            cache_misses=merged.cache_misses,
            worker_work=worker_work,
            worker_loads=dict(routing.worker_loads),
            telemetry=telemetry,
            data_plane=data_plane,
            data_plane_stats=data_plane_stats,
            kernel=kernel_choice.key if kernel_choice else None,
            kernel_reason=(kernel_choice.reason if kernel_choice
                           else None),
        )

    shuffle = routing.materialize(db)
    local_query = shuffle.local_query
    kern = None
    if kernel_key != "wcoj":
        from ..kernels import create_kernel

        kern = create_kernel(kernel_key)
    count = 0
    total_work = 0
    level_tuples = [0] * len(order)
    worker_work: dict[int, float] = {w: 0.0 for w in
                                     range(cluster.num_workers)}
    cache_hits = cache_misses = 0
    join_start = time.perf_counter()
    for cube, cube_db in enumerate(shuffle.cube_databases):
        worker = grid.worker_of_cube(cube)
        cache = None
        if cache_capacity is not None and kern is None:
            cache = IntersectionCache(int(cache_capacity(
                shuffle.worker_loads.get(worker, 0))))
        remaining = None if work_budget is None \
            else max(0, work_budget - total_work)
        if remaining == 0:
            raise BudgetExceeded(total_work, work_budget)
        if kern is not None:
            result = kern.execute(local_query, cube_db, order,
                                  budget=remaining)
        else:
            result = leapfrog_join(local_query, cube_db, order,
                                   cache=cache, budget=remaining)
        count += result.count
        stats: LeapfrogStats = result.stats
        total_work += stats.intersection_work
        worker_work[worker] += stats.intersection_work
        for d in range(len(order)):
            level_tuples[d] += stats.level_tuples[d]
        if cache is not None:
            cache_hits += cache.hits
            cache_misses += cache.misses
    if telemetry is not None:
        telemetry.record("local_join", time.perf_counter() - join_start)
    ledger.charge_worker_work(worker_work, phase="computation")
    return OneRoundOutcome(
        count=count,
        level_tuples=level_tuples,
        leapfrog_work=total_work,
        shuffled_tuples=shuffle.stats.tuple_copies,
        max_worker_tuples=shuffle.stats.max_worker_tuples,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        worker_work=worker_work,
        worker_loads=dict(shuffle.worker_loads),
        telemetry=telemetry,
        kernel=kernel_choice.key if kernel_choice else None,
        kernel_reason=kernel_choice.reason if kernel_choice else None,
    )
