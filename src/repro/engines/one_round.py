"""Shared one-round execution: HCube shuffle + per-cube Leapfrog.

Used by HCubeJ, HCubeJ+Cache and ADJ — they differ only in the shuffle
implementation, the attribute order, the presence of an intersection
cache, and (for ADJ) the pre-computed relations in the database.

Two execution paths produce identical counts and identical modeled
costs:

- the **inline path** (default, ``executor=None``) evaluates every cube
  in the calling process, exactly the historical simulated behaviour —
  it also carries the per-cube intersection caches HCubeJ+Cache needs;
- the **runtime path** (any :class:`repro.runtime.Executor`) groups each
  worker's cubes into a :class:`repro.runtime.WorkerTask` and runs them
  on the chosen backend, recording measured wall-clock telemetry next to
  the modeled ledger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.hcube import HypercubeGrid, hcube_shuffle
from ..distributed.metrics import CostLedger
from ..distributed.partitioner import optimize_shares
from ..errors import BudgetExceeded
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..runtime.scheduler import (
    build_worker_tasks,
    merge_task_results,
    run_worker_tasks,
)
from ..runtime.telemetry import RuntimeTelemetry
from ..wcoj.cache import IntersectionCache
from ..wcoj.leapfrog import LeapfrogStats, leapfrog_join

__all__ = ["OneRoundOutcome", "one_round_execute"]


@dataclass
class OneRoundOutcome:
    """Counts and aggregated statistics of one one-round evaluation."""

    count: int
    level_tuples: list[int]
    leapfrog_work: int
    shuffled_tuples: int
    max_worker_tuples: int
    cache_hits: int = 0
    cache_misses: int = 0
    worker_work: dict[int, float] | None = None
    worker_loads: dict[int, int] | None = None
    telemetry: RuntimeTelemetry | None = None


def one_round_execute(query: JoinQuery, db: Database, cluster: Cluster,
                      order: Sequence[str], ledger: CostLedger,
                      impl: str = "push",
                      cache_factory: Callable[[int], IntersectionCache | None]
                      | None = None,
                      work_budget: int | None = None,
                      comm_phase: str = "communication",
                      executor: Executor | None = None,
                      telemetry: RuntimeTelemetry | None = None
                      ) -> OneRoundOutcome:
    """Shuffle with HCube, then run Leapfrog on every cube.

    ``cache_factory(worker_load)`` may supply a per-cube intersection
    cache sized from the memory left after the shuffle (HCubeJ+Cache).
    Communication is charged to ``comm_phase`` so ADJ can book the bag
    shuffles under pre-computing.

    ``executor`` selects the runtime backend for the per-cube Leapfrog
    work; caches are in-process objects, so a non-null ``cache_factory``
    forces the inline path regardless of the executor.
    """
    if telemetry is None and executor is not None:
        telemetry = RuntimeTelemetry(backend=executor.name,
                                     num_workers=cluster.num_workers)
    sizes = {a.relation: len(db[a.relation]) for a in query.atoms}
    shares = optimize_shares(query, sizes, cluster.num_workers,
                             memory_tuples=cluster.memory_tuples_per_worker)
    grid = HypercubeGrid(query, shares, cluster.num_workers)
    shuffle_start = time.perf_counter()
    shuffle = hcube_shuffle(query, db, grid, impl=impl,
                            memory_tuples=cluster.memory_tuples_per_worker)
    if telemetry is not None:
        telemetry.record("shuffle", time.perf_counter() - shuffle_start)
    ledger.charge_shuffle(shuffle.stats, impl, phase=comm_phase)
    # Local trie construction (skipped cost-wise by Merge: blocks arrive
    # as pre-built tries and only need merging).
    rate = (cluster.params.trie_merge_rate if shuffle.prebuilt_tries
            else cluster.params.trie_build_rate)
    ledger.charge_worker_work(
        {w: float(load) for w, load in shuffle.worker_loads.items()},
        rate=rate, phase="computation")

    order = tuple(order)
    if executor is not None and cache_factory is None:
        # Runtime path: per-worker tasks on the chosen backend.
        tasks = build_worker_tasks(shuffle, order, budget=work_budget)
        results = run_worker_tasks(executor, tasks, telemetry=telemetry)
        merged = merge_task_results(results, len(order),
                                    budget=work_budget)
        worker_work = {w: 0.0 for w in range(cluster.num_workers)}
        worker_work.update(merged.worker_work)
        ledger.charge_worker_work(worker_work, phase="computation")
        return OneRoundOutcome(
            count=merged.count,
            level_tuples=merged.level_tuples,
            leapfrog_work=merged.total_work,
            shuffled_tuples=shuffle.stats.tuple_copies,
            max_worker_tuples=shuffle.stats.max_worker_tuples,
            worker_work=worker_work,
            worker_loads=dict(shuffle.worker_loads),
            telemetry=telemetry,
        )

    local_query = shuffle.local_query
    count = 0
    total_work = 0
    level_tuples = [0] * len(order)
    worker_work: dict[int, float] = {w: 0.0 for w in
                                     range(cluster.num_workers)}
    cache_hits = cache_misses = 0
    join_start = time.perf_counter()
    for cube, cube_db in enumerate(shuffle.cube_databases):
        worker = grid.worker_of_cube(cube)
        cache = None
        if cache_factory is not None:
            cache = cache_factory(shuffle.worker_loads.get(worker, 0))
        remaining = None if work_budget is None \
            else max(0, work_budget - total_work)
        if remaining == 0:
            raise BudgetExceeded(total_work, work_budget)
        result = leapfrog_join(local_query, cube_db, order,
                               cache=cache, budget=remaining)
        count += result.count
        stats: LeapfrogStats = result.stats
        total_work += stats.intersection_work
        worker_work[worker] += stats.intersection_work
        for d in range(len(order)):
            level_tuples[d] += stats.level_tuples[d]
        if cache is not None:
            cache_hits += cache.hits
            cache_misses += cache.misses
    if telemetry is not None:
        telemetry.record("local_join", time.perf_counter() - join_start)
    ledger.charge_worker_work(worker_work, phase="computation")
    return OneRoundOutcome(
        count=count,
        level_tuples=level_tuples,
        leapfrog_work=total_work,
        shuffled_tuples=shuffle.stats.tuple_copies,
        max_worker_tuples=shuffle.stats.max_worker_tuples,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        worker_work=worker_work,
        worker_loads=dict(shuffle.worker_loads),
        telemetry=telemetry,
    )
