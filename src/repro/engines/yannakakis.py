"""Yannakakis over a GHD as a distributed engine (EmptyHeaded-style).

An extension engine beyond the paper's five competitors: Sec. VI notes
that EmptyHeaded "improves the computation efficiency at a great cost of
memory consumption".  This engine makes that trade-off measurable: every
bag is materialized (memory!), two distributed semijoin sweeps prune
dangling tuples (extra rounds!), and the final joins are output-bounded.
Used by the ablation benches against ADJ.

With a :mod:`repro.runtime` executor the bag-materialization phase — the
WCOJ-heavy part — runs as one task per bag on the chosen backend.  Source
relations travel through the executor's data-plane transport (whole-array
descriptors: under ``shm`` the broadcast to every bag is zero-copy), the
semijoin sweeps and bottom-up joins stay coordinator-side, and counts,
bag statistics and modeled costs are identical to the inline path.
"""

from __future__ import annotations

import time

from ..data.database import Database
from ..data.relation import Relation
from ..distributed.cluster import Cluster
from ..distributed.metrics import ShuffleStats
from ..errors import BudgetExceeded, OutOfMemory, WorkerCrashed
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..obs.tracing import trace_context
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..runtime.scheduler import absorb_result_observability
from ..runtime.telemetry import RuntimeTelemetry
from ..runtime.worker import BagTask, materialize_bag_task
from ..wcoj.yannakakis import (
    YannakakisStats,
    full_reducer,
    join_reduced,
    materialize_bags,
)
from .base import EngineResult

__all__ = ["YannakakisJoin"]


class YannakakisJoin:
    """GHD + full reducer + bottom-up joins."""

    name = "Yannakakis"
    options_map = {"work_budget": "work_budget", "hypertree": "hypertree",
                   "kernel": "kernel"}

    def __init__(self, work_budget: int | None = None,
                 hypertree: Hypertree | None = None,
                 kernel: str | None = None):
        self.work_budget = work_budget
        self.hypertree = hypertree
        self.kernel = kernel

    def _bag_kernels(self, query: JoinQuery, db: Database,
                     tree: Hypertree) -> dict[int, str]:
        """Resolve a concrete kernel per bag, on the coordinator.

        Each bag is its own subquery, so ``adaptive`` may pick binary
        for an acyclic bag and wcoj for a cyclic one within one run.
        """
        from ..kernels.adaptive import select_kernel

        choices: dict[int, str] = {}
        for bag in tree.bags:
            sub = JoinQuery([query.atoms[i] for i in bag.atom_indices],
                            name=f"bag{bag.index}")
            choice = select_kernel(self.kernel, sub, db,
                                   scope=f"bag{bag.index}")
            choices[bag.index] = choice.key
        return choices

    def _materialize_parallel(self, query: JoinQuery, db: Database,
                              tree: Hypertree, executor: Executor,
                              stats: YannakakisStats,
                              telemetry: RuntimeTelemetry,
                              num_workers: int,
                              bag_kernels: dict[int, str]
                              ) -> tuple[dict[int, Relation], dict]:
        """One bag-materialization task per GHD bag, via the transport.

        Results come back in bag order, so ``stats.bag_sizes`` and
        ``bag_materialize_work`` accumulate exactly like the inline
        :func:`~repro.wcoj.yannakakis.materialize_bags`.  Bags are
        attributed to workers round-robin (the scheduler's cube
        convention), so telemetry and crash reports carry worker ids
        within ``num_workers`` even when there are more bags.
        """
        transport = executor.transport

        ctx = trace_context()

        def bag_task(bag) -> BagTask:
            attrs = tuple(a for a in query.attributes
                          if a in bag.attributes)
            sub = JoinQuery([query.atoms[i] for i in bag.atom_indices],
                            name=f"bag{bag.index}")
            return BagTask(
                index=bag.index, query=sub, order=attrs,
                arrays=tuple(
                    transport.make_ref(transport.publish(
                        f"rel:{a.relation}", db[a.relation].data))
                    for a in sub.atoms),
                budget=self.work_budget, trace=ctx,
                kernel=bag_kernels.get(bag.index, "wcoj"))

        try:
            if getattr(executor, "pipeline", False):
                # Stream bags: the first bag's WCOJ starts while later
                # bags' source relations are still being published.
                from ..runtime.scheduler import run_streamed

                results = run_streamed(
                    executor, materialize_bag_task,
                    (bag_task(bag) for bag in tree.bags),
                    telemetry=telemetry,
                    mint_phase="publish", run_phase="precompute")
            else:
                t0 = time.perf_counter()
                tasks = [bag_task(bag) for bag in tree.bags]
                telemetry.record("publish", time.perf_counter() - t0)
                t1 = time.perf_counter()
                results = executor.map_tasks(materialize_bag_task, tasks)
                telemetry.record("precompute", time.perf_counter() - t1)
        finally:
            transport.teardown()
        # Post-teardown snapshot: includes blocks freed / bytes fetched.
        data_plane = dict(transport.last_epoch.as_dict(),
                          transport=transport.name)
        absorb_result_observability(results)
        bags: dict[int, Relation] = {}
        for res in results:
            if res.failure == "crash":
                reason = res.failure_info[0] if res.failure_info \
                    else "unknown"
                raise WorkerCrashed(res.index % num_workers, reason)
            if res.failure == "budget":
                raise BudgetExceeded(*res.failure_info)
            rel = Relation(f"bag{res.index}", res.attrs, res.data,
                           dedup=False)
            bags[res.index] = rel
            stats.bag_materialize_work += res.work
            stats.bag_sizes.append(len(rel))
            telemetry.record_worker(res.index % num_workers,
                                    res.total_seconds)
        return bags, data_plane

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        ledger = cluster.new_ledger()
        params = cluster.params
        tree = self.hypertree or optimal_hypertree(query)
        ledger.charge_seconds(
            tree.num_bags ** 2 / params.beta_work, "optimization")
        stats = YannakakisStats()

        # Phase 1: materialize bags (pre-computing: shuffle inputs + WCOJ).
        bag_kernels: dict[int, str] = {}
        if self.kernel is not None:
            bag_kernels = self._bag_kernels(query, db, tree)
        telemetry = None
        data_plane = None
        if executor is not None:
            telemetry = RuntimeTelemetry(backend=executor.name,
                                         num_workers=cluster.num_workers)
            bags, data_plane = self._materialize_parallel(
                query, db, tree, executor, stats, telemetry,
                cluster.num_workers, bag_kernels)
        else:
            bags = materialize_bags(query, db, tree, stats=stats,
                                    budget=self.work_budget,
                                    bag_kernels=bag_kernels)
        input_tuples = sum(len(db[a.relation]) for a in query.atoms)
        ledger.charge_seconds(input_tuples / params.alpha_pull, "precompute")
        ledger.charge_seconds(
            stats.bag_materialize_work
            / (params.beta_work * cluster.num_workers), "precompute")
        # Memory check: bags live in memory, spread over the cluster.
        if cluster.memory_tuples_per_worker is not None:
            per_worker = sum(stats.bag_sizes) / cluster.num_workers
            if per_worker > cluster.memory_tuples_per_worker:
                raise OutOfMemory(0, int(per_worker),
                                  int(cluster.memory_tuples_per_worker))

        # Phase 2: full reducer — each semijoin is a repartition round.
        t_reduce = time.perf_counter()
        reduced = full_reducer(tree, bags, stats=stats)
        if telemetry is not None:
            telemetry.record("semijoin", time.perf_counter() - t_reduce)
        ledger.charge_shuffle(
            ShuffleStats(tuple_copies=stats.semijoin_tuples_scanned,
                         blocks_fetched=stats.semijoin_rounds
                         * cluster.num_workers,
                         bytes_copied=stats.semijoin_tuples_scanned * 16),
            impl="pull")
        ledger.charge_seconds(
            stats.semijoin_tuples_scanned
            / (params.beta_work * cluster.num_workers), "computation")

        # Phase 3: bottom-up joins over the reduced bags.
        t_join = time.perf_counter()
        result = join_reduced(query, tree, reduced, stats=stats)
        if telemetry is not None:
            telemetry.record("local_join", time.perf_counter() - t_join)
        join_work = stats.join_intermediate_tuples + sum(
            len(r) for r in reduced.values())
        ledger.charge_shuffle(
            ShuffleStats(tuple_copies=stats.join_intermediate_tuples,
                         blocks_fetched=cluster.num_workers,
                         bytes_copied=stats.join_intermediate_tuples * 16),
            impl="pull")
        ledger.charge_seconds(
            join_work / (params.beta_work * cluster.num_workers),
            "computation")

        extra = {
            "bag_sizes": stats.bag_sizes,
            "semijoin_rounds": stats.semijoin_rounds,
            "join_intermediates": stats.join_intermediate_tuples,
        }
        if bag_kernels:
            extra["kernel_decisions"] = dict(sorted(bag_kernels.items()))
        if telemetry is not None:
            extra["telemetry"] = telemetry
        if data_plane is not None:
            extra["data_plane"] = data_plane
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=len(result),
            breakdown=ledger.breakdown(),
            shuffled_tuples=ledger.tuples_shuffled,
            rounds=1 + stats.semijoin_rounds + (tree.num_bags - 1),
            extra=extra,
        )
