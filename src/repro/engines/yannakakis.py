"""Yannakakis over a GHD as a distributed engine (EmptyHeaded-style).

An extension engine beyond the paper's five competitors: Sec. VI notes
that EmptyHeaded "improves the computation efficiency at a great cost of
memory consumption".  This engine makes that trade-off measurable: every
bag is materialized (memory!), two distributed semijoin sweeps prune
dangling tuples (extra rounds!), and the final joins are output-bounded.
Used by the ablation benches against ADJ.
"""

from __future__ import annotations

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.metrics import ShuffleStats
from ..errors import OutOfMemory
from ..ghd.decomposition import Hypertree, optimal_hypertree
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from ..wcoj.yannakakis import (
    YannakakisStats,
    full_reducer,
    join_reduced,
    materialize_bags,
)
from .base import EngineResult

__all__ = ["YannakakisJoin"]


class YannakakisJoin:
    """GHD + full reducer + bottom-up joins."""

    name = "Yannakakis"

    def __init__(self, work_budget: int | None = None,
                 hypertree: Hypertree | None = None):
        self.work_budget = work_budget
        self.hypertree = hypertree

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        # Semijoin sweeps are global sequential passes; this engine has no
        # parallel task decomposition yet, so the executor is ignored.
        del executor
        ledger = cluster.new_ledger()
        params = cluster.params
        tree = self.hypertree or optimal_hypertree(query)
        ledger.charge_seconds(
            tree.num_bags ** 2 / params.beta_work, "optimization")
        stats = YannakakisStats()

        # Phase 1: materialize bags (pre-computing: shuffle inputs + WCOJ).
        bags = materialize_bags(query, db, tree, stats=stats,
                                budget=self.work_budget)
        input_tuples = sum(len(db[a.relation]) for a in query.atoms)
        ledger.charge_seconds(input_tuples / params.alpha_pull, "precompute")
        ledger.charge_seconds(
            stats.bag_materialize_work
            / (params.beta_work * cluster.num_workers), "precompute")
        # Memory check: bags live in memory, spread over the cluster.
        if cluster.memory_tuples_per_worker is not None:
            per_worker = sum(stats.bag_sizes) / cluster.num_workers
            if per_worker > cluster.memory_tuples_per_worker:
                raise OutOfMemory(0, int(per_worker),
                                  int(cluster.memory_tuples_per_worker))

        # Phase 2: full reducer — each semijoin is a repartition round.
        reduced = full_reducer(tree, bags, stats=stats)
        ledger.charge_shuffle(
            ShuffleStats(tuple_copies=stats.semijoin_tuples_scanned,
                         blocks_fetched=stats.semijoin_rounds
                         * cluster.num_workers,
                         bytes_copied=stats.semijoin_tuples_scanned * 16),
            impl="pull")
        ledger.charge_seconds(
            stats.semijoin_tuples_scanned
            / (params.beta_work * cluster.num_workers), "computation")

        # Phase 3: bottom-up joins over the reduced bags.
        result = join_reduced(query, tree, reduced, stats=stats)
        join_work = stats.join_intermediate_tuples + sum(
            len(r) for r in reduced.values())
        ledger.charge_shuffle(
            ShuffleStats(tuple_copies=stats.join_intermediate_tuples,
                         blocks_fetched=cluster.num_workers,
                         bytes_copied=stats.join_intermediate_tuples * 16),
            impl="pull")
        ledger.charge_seconds(
            join_work / (params.beta_work * cluster.num_workers),
            "computation")

        return EngineResult(
            engine=self.name,
            query=query.name,
            count=len(result),
            breakdown=ledger.breakdown(),
            shuffled_tuples=ledger.tuples_shuffled,
            rounds=1 + stats.semijoin_rounds + (tree.num_bags - 1),
            extra={
                "bag_sizes": stats.bag_sizes,
                "semijoin_rounds": stats.semijoin_rounds,
                "join_intermediates": stats.join_intermediate_tuples,
            },
        )
