"""HCubeJ + Cache: one-round join with CacheTrieJoin-style caching [28].

Identical to HCubeJ except each cube's Leapfrog memoizes intersection
results in an LRU cache.  The cache capacity is whatever memory the HCube
shuffle left on the worker — the paper's central observation about this
baseline: on small datasets (AS) there is plenty left and caching rivals
ADJ; on LJ/OK the shuffle consumes the budget and caching stops helping.
"""

from __future__ import annotations

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from .base import EngineResult, attach_degree_order
from .hcubej import HCubeJ
from .one_round import one_round_execute

__all__ = ["HCubeJCache"]

#: Cache sizing when the cluster has no explicit memory budget: a
#: multiple of the worker's local data (abundant-memory assumption).
_DEFAULT_CAPACITY_FACTOR = 4


class HCubeJCache(HCubeJ):
    """HCubeJ with a bounded per-cube intersection cache.

    Caches are worker-local: the coordinator only computes a *capacity*
    per worker (from the memory the shuffle left), and each worker — on
    any runtime backend — builds its own per-cube cache.  Hit/miss
    totals are deterministic and identical across backends.
    """

    name = "HCubeJ+Cache"
    hcube_impl = "push"
    # options_map inherited from HCubeJ (work_budget, order, kernel).
    # Non-wcoj kernels have no intersection cache; the capacity is
    # computed but ignored on those paths.

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        ledger = cluster.new_ledger()
        self._charge_optimization(query, cluster, ledger)
        order = self.order or attach_degree_order(query, db)
        budget = cluster.memory_tuples_per_worker

        def cache_capacity(worker_load: int) -> int:
            if budget is None:
                return worker_load * _DEFAULT_CAPACITY_FACTOR
            # Values of leftover memory after the shuffle (>= 0).
            return max(0, int(budget) - worker_load)

        outcome = one_round_execute(
            query, db, cluster, order, ledger, impl=self.hcube_impl,
            cache_capacity=cache_capacity, work_budget=self.work_budget,
            executor=executor, kernel=self.kernel)
        extra = {
            "order": order,
            "level_tuples": outcome.level_tuples,
            "leapfrog_work": outcome.leapfrog_work,
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
        }
        if outcome.kernel is not None:
            extra["kernel"] = outcome.kernel
            extra["kernel_reason"] = outcome.kernel_reason
        if outcome.telemetry is not None:
            extra["telemetry"] = outcome.telemetry
        if outcome.data_plane is not None:
            extra["data_plane"] = outcome.data_plane
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=outcome.count,
            breakdown=ledger.breakdown(),
            shuffled_tuples=outcome.shuffled_tuples,
            rounds=1,
            extra=extra,
        )
