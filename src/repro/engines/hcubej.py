"""HCubeJ: the communication-first one-round baseline (Chu et al. [11]).

Shares are optimized for communication alone, data is shuffled with the
original Push implementation, and every cube runs plain Leapfrog under an
attribute order picked from the *full* order space by the degree
heuristic ('All-Selected' in Fig. 8).  No pre-computation ever happens —
this is exactly the strategy the paper improves on.
"""

from __future__ import annotations

from ..data.database import Database
from ..distributed.cluster import Cluster
from ..distributed.partitioner import enumerate_share_vectors
from ..query.query import JoinQuery
from ..runtime.executor import Executor
from .base import EngineResult, attach_degree_order
from .one_round import one_round_execute

__all__ = ["HCubeJ"]


class HCubeJ:
    """One-round HCube + Leapfrog, communication-first."""

    name = "HCubeJ"
    hcube_impl = "push"
    options_map = {"work_budget": "work_budget", "order": "order",
                   "kernel": "kernel"}

    def __init__(self, work_budget: int | None = None,
                 order: tuple[str, ...] | None = None,
                 kernel: str | None = None):
        self.work_budget = work_budget
        self.order = order
        self.kernel = kernel

    def _charge_optimization(self, query: JoinQuery, cluster: Cluster,
                             ledger) -> None:
        """Share enumeration is the only optimization HCubeJ does; charge
        it at the generic work rate (it is tiny — the paper's Tables
        II-IV report seconds, versus hundreds for co-optimization)."""
        vectors = sum(1 for _ in enumerate_share_vectors(
            query.num_attributes, cluster.num_workers))
        ledger.charge_seconds(
            vectors * query.num_atoms / cluster.params.beta_work,
            "optimization")

    def run(self, query: JoinQuery, db: Database, cluster: Cluster,
            executor: Executor | None = None) -> EngineResult:
        ledger = cluster.new_ledger()
        self._charge_optimization(query, cluster, ledger)
        order = self.order or attach_degree_order(query, db)
        outcome = one_round_execute(
            query, db, cluster, order, ledger, impl=self.hcube_impl,
            work_budget=self.work_budget, executor=executor,
            kernel=self.kernel)
        extra = {
            "order": order,
            "level_tuples": outcome.level_tuples,
            "leapfrog_work": outcome.leapfrog_work,
            "max_worker_tuples": outcome.max_worker_tuples,
            "worker_work": outcome.worker_work,
            "worker_loads": outcome.worker_loads,
        }
        if outcome.kernel is not None:
            extra["kernel"] = outcome.kernel
            extra["kernel_reason"] = outcome.kernel_reason
        if outcome.telemetry is not None:
            extra["telemetry"] = outcome.telemetry
        if outcome.data_plane is not None:
            extra["data_plane"] = outcome.data_plane
        return EngineResult(
            engine=self.name,
            query=query.name,
            count=outcome.count,
            breakdown=ledger.breakdown(),
            shuffled_tuples=outcome.shuffled_tuples,
            rounds=1,
            extra=extra,
        )
